"""Editorially-reviewed dictionaries and the entity taxonomy.

The paper's named entities "are detected with the help of editorially
reviewed dictionaries" containing "categorized terms and phrases
according to a pre-defined taxonomy" with major types and subtypes, and
an entity may belong to multiple types ("jaguar"), in which case it is
disambiguated.  We generate such a dictionary from the concept
universe's named entities, including a controlled fraction of ambiguous
entries, plus per-type subtypes and geo metadata for places (the
"data-packs" of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.concepts import TAXONOMY_TYPES, Concept

_SUBTYPES: Dict[str, Tuple[str, ...]] = {
    "person": ("actor", "musician", "scientist", "politician", "athlete"),
    "place": ("city", "country", "region", "landmark"),
    "organization": ("company", "agency", "team", "university"),
    "product": ("electronics", "vehicle", "software", "media"),
    "event": ("sports", "political", "cultural"),
    "animal": ("mammal", "bird", "reptile"),
}


@dataclass(frozen=True)
class DictionaryEntry:
    """One editorial dictionary record for a phrase."""

    phrase: str
    high_level_type: str
    subtype: str
    geo: Optional[Tuple[float, float]] = None  # (latitude, longitude) for places


class EditorialDictionary:
    """Phrase -> typed entries; supports ambiguous (multi-type) phrases."""

    def __init__(self, entries: Sequence[DictionaryEntry]):
        self._by_phrase: Dict[str, List[DictionaryEntry]] = {}
        for entry in entries:
            self._by_phrase.setdefault(entry.phrase.lower(), []).append(entry)

    def __len__(self) -> int:
        return sum(len(v) for v in self._by_phrase.values())

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._by_phrase

    def phrases(self) -> List[str]:
        return list(self._by_phrase)

    def lookup(self, phrase: str) -> List[DictionaryEntry]:
        """All entries for *phrase* (empty list if unknown)."""
        return list(self._by_phrase.get(phrase.lower(), ()))

    def is_ambiguous(self, phrase: str) -> bool:
        """True when the phrase maps to more than one taxonomy type."""
        entries = self._by_phrase.get(phrase.lower(), ())
        return len({e.high_level_type for e in entries}) > 1

    def high_level_type(self, phrase: str) -> Optional[str]:
        """First (primary) type for *phrase*, or None."""
        entries = self._by_phrase.get(phrase.lower(), ())
        return entries[0].high_level_type if entries else None

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        concepts: Sequence[Concept],
        ambiguous_fraction: float = 0.05,
    ) -> "EditorialDictionary":
        """Build the dictionary from the named entities of the universe."""
        entries: List[DictionaryEntry] = []
        for concept in concepts:
            if concept.taxonomy_type is None:
                continue
            primary = concept.taxonomy_type
            subtype_pool = _SUBTYPES[primary]
            subtype = str(subtype_pool[rng.integers(len(subtype_pool))])
            geo = None
            if primary == "place":
                geo = (
                    float(rng.uniform(-90, 90)),
                    float(rng.uniform(-180, 180)),
                )
            entries.append(
                DictionaryEntry(
                    phrase=concept.phrase,
                    high_level_type=primary,
                    subtype=subtype,
                    geo=geo,
                )
            )
            if rng.random() < ambiguous_fraction:
                other_types = [t for t in TAXONOMY_TYPES if t != primary]
                other = str(other_types[rng.integers(len(other_types))])
                other_subtypes = _SUBTYPES[other]
                entries.append(
                    DictionaryEntry(
                        phrase=concept.phrase,
                        high_level_type=other,
                        subtype=str(other_subtypes[rng.integers(len(other_subtypes))]),
                        geo=None,
                    )
                )
        return cls(entries)
