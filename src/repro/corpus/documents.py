"""Document generation: news stories and web pages with embedded concepts.

A generated document is lower-case sentence text with punctuation, plus
the ground-truth list of concept mentions (character spans and latent
relevance).  The latent relevance of a mention is what the click model
consumes; rankers never see it.

The generative recipe mirrors the structure the paper relies on:

* story body words come from the story's topics, mixed with Zipfian
  background words and stopwords;
* concepts whose home topic matches the story are embedded as *relevant*
  mentions; a few concepts from foreign topics are embedded as
  *off-topic* mentions (the paper's "Texas" example); junk phrases
  occur naturally because they are stopword n-grams, and are also
  spliced explicitly so they are detectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.corpus.concepts import Concept, concepts_for_topic
from repro.corpus.topics import Topic, sample_topic_mixture
from repro.corpus.vocabulary import Vocabulary
from repro.text.stopwords import STOPWORDS

_STOPWORD_LIST = sorted(STOPWORDS)


@dataclass(frozen=True)
class ConceptMention:
    """Ground truth for one embedded concept occurrence."""

    concept_id: int
    start: int
    end: int
    relevance: float


@dataclass
class GeneratedDocument:
    """A synthetic document with its ground-truth mentions."""

    doc_id: int
    topics: Tuple[int, ...]
    text: str
    mentions: List[ConceptMention] = field(default_factory=list)

    def mention_spans(self) -> List[Tuple[int, int]]:
        return [(m.start, m.end) for m in self.mentions]

    def relevance_of(self, concept_id: int) -> float:
        """Max latent relevance over the concept's mentions (0 if absent)."""
        scores = [m.relevance for m in self.mentions if m.concept_id == concept_id]
        return max(scores) if scores else 0.0


# -- internal text assembly --------------------------------------------------


def _render_stream(
    stream: Sequence[object],
    rng: np.random.Generator,
) -> Tuple[str, List[ConceptMention]]:
    """Join a stream of words / (concept, relevance) pairs into sentences.

    Returns the text and the mention list with character offsets.
    """
    pieces: List[str] = []
    mentions: List[ConceptMention] = []
    position = 0
    words_in_sentence = 0
    sentence_target = int(rng.integers(8, 15))

    for item in stream:
        if pieces:
            if words_in_sentence >= sentence_target:
                pieces.append(". ")
                position += 2
                words_in_sentence = 0
                sentence_target = int(rng.integers(8, 15))
            else:
                pieces.append(" ")
                position += 1
        if isinstance(item, str):
            pieces.append(item)
            position += len(item)
            words_in_sentence += 1
        else:
            concept, relevance = item
            start = position
            pieces.append(concept.phrase)
            position += len(concept.phrase)
            words_in_sentence += len(concept.terms)
            mentions.append(
                ConceptMention(
                    concept_id=concept.concept_id,
                    start=start,
                    end=position,
                    relevance=relevance,
                )
            )
    if pieces:
        pieces.append(".")
    return "".join(pieces), mentions


def _filler_words(
    rng: np.random.Generator,
    topics: Sequence[Topic],
    topic_ids: Sequence[int],
    vocabulary: Vocabulary,
    count: int,
    topic_probability: float = 0.62,
    stopword_probability: float = 0.28,
) -> List[str]:
    """Draw *count* body words: topic words, background words, stopwords."""
    words: List[str] = []
    draws = rng.random(count)
    for value in draws:
        if value < topic_probability and topic_ids:
            topic = topics[int(rng.choice(list(topic_ids)))]
            words.extend(topic.sample_words(rng, 1))
        elif value < topic_probability + stopword_probability:
            words.append(_STOPWORD_LIST[int(rng.integers(len(_STOPWORD_LIST)))])
        else:
            words.extend(vocabulary.sample(rng, 1))
    return words


def _splice(
    filler: List[str],
    insertions: List[Tuple[int, object]],
) -> List[object]:
    """Insert (position, item) pairs into the filler word list."""
    stream: List[object] = list(filler)
    for position, item in sorted(insertions, key=lambda pair: -pair[0]):
        stream.insert(min(position, len(stream)), item)
    return stream


# -- relevance latents --------------------------------------------------------


def _mention_relevance(
    rng: np.random.Generator, concept: Concept, topic_ids: Sequence[int]
) -> float:
    if concept.is_junk:
        return float(rng.uniform(0.0, 0.10))
    if concept.relevant_in(topic_ids):
        return float(rng.uniform(0.75, 1.0))
    return float(rng.uniform(0.05, 0.25))


# -- public generators --------------------------------------------------------


class StoryGenerator:
    """Generates news stories for the Contextual Shortcuts click pipeline."""

    def __init__(
        self,
        rng: np.random.Generator,
        topics: Sequence[Topic],
        concepts: Sequence[Concept],
        vocabulary: Vocabulary,
        min_words: int = 250,
        max_words: int = 550,
        relevant_range: Tuple[int, int] = (3, 7),
        offtopic_range: Tuple[int, int] = (1, 3),
        junk_probability: float = 0.5,
    ):
        self._rng = rng
        self._topics = topics
        self._concepts = concepts
        self._vocabulary = vocabulary
        self._min_words = min_words
        self._max_words = max_words
        self._relevant_range = relevant_range
        self._offtopic_range = offtopic_range
        self._junk_probability = junk_probability
        self._by_topic: Dict[int, List[Concept]] = {
            topic.topic_id: concepts_for_topic(concepts, topic.topic_id)
            for topic in topics
        }
        self._junk = [c for c in concepts if c.is_junk]
        self._regular = [c for c in concepts if not c.is_junk]

    def _pick_relevant(self, topic_ids: Sequence[int], count: int) -> List[Concept]:
        pool: List[Concept] = []
        for topic_id in topic_ids:
            pool.extend(self._by_topic.get(topic_id, []))
        if not pool:
            return []
        # newsworthiness: popular entities are written about more often
        appeal = np.asarray([0.15 + c.interestingness for c in pool])
        probabilities = appeal / appeal.sum()
        indices = self._rng.choice(
            len(pool), size=min(count, len(pool)), replace=False, p=probabilities
        )
        return [pool[int(i)] for i in indices]

    def _pick_offtopic(self, topic_ids: Sequence[int], count: int) -> List[Concept]:
        pool = [c for c in self._regular if not c.relevant_in(topic_ids)]
        if not pool:
            return []
        indices = self._rng.choice(
            len(pool), size=min(count, len(pool)), replace=False
        )
        return [pool[int(i)] for i in indices]

    def generate(self, doc_id: int) -> GeneratedDocument:
        """Generate one news story."""
        rng = self._rng
        topic_ids = sample_topic_mixture(rng, self._topics)
        total_words = int(rng.integers(self._min_words, self._max_words + 1))
        filler = _filler_words(
            rng, self._topics, topic_ids, self._vocabulary, total_words
        )

        relevant_count = int(rng.integers(*self._relevant_range)) + 1
        offtopic_count = int(rng.integers(*self._offtopic_range)) + 1
        chosen: List[Tuple[Concept, float]] = []
        for concept in self._pick_relevant(topic_ids, relevant_count):
            chosen.append((concept, _mention_relevance(rng, concept, topic_ids)))
        for concept in self._pick_offtopic(topic_ids, offtopic_count):
            chosen.append((concept, _mention_relevance(rng, concept, topic_ids)))
        if self._junk and rng.random() < self._junk_probability:
            junk = self._junk[int(rng.integers(len(self._junk)))]
            chosen.append((junk, _mention_relevance(rng, junk, topic_ids)))

        insertions: List[Tuple[int, object]] = []
        for concept, relevance in chosen:
            # relevant entities recur in a story, and popular ones recur
            # more (editors return to the draw) — this prominence is the
            # signal the tf-based concept-vector baseline picks up
            if relevance >= 0.5:
                rate = 0.5 + 2.2 * concept.interestingness
                occurrences = 1 + min(5, int(rng.poisson(rate)))
            else:
                occurrences = 1 + int(rng.random() < 0.15)
            for __ in range(occurrences):
                position = int(rng.integers(0, max(1, len(filler))))
                insertions.append((position, (concept, relevance)))

        stream = _splice(filler, insertions)
        text, mentions = _render_stream(stream, rng)
        return GeneratedDocument(
            doc_id=doc_id, topics=topic_ids, text=text, mentions=mentions
        )

    def generate_many(self, count: int, start_id: int = 0) -> List[GeneratedDocument]:
        return [self.generate(start_id + i) for i in range(count)]


class WebCorpusGenerator:
    """Generates the synthetic web corpus behind the search engine.

    Three page kinds:

    * **topic pages** — general pages about one topic, mentioning a few
      of the topic's concepts;
    * **focus pages** — pages *about* a specific concept: the phrase
      repeats and the body uses the concept's home-topic words.  Their
      count grows with interestingness (popular things get written
      about), giving specific concepts a coherent result set;
    * **incidental mentions** — the phrase spliced into pages of foreign
      topics.  Their count grows as specificity falls, so general and
      junk concepts occur in many, topically scattered pages: that is
      exactly what makes their mined relevant keywords sparse (Table II)
      and their phrase-query result counts high (feature 4).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        topics: Sequence[Topic],
        concepts: Sequence[Concept],
        vocabulary: Vocabulary,
        page_words: Tuple[int, int] = (60, 120),
        max_focus_pages: int = 80,
        max_incidental_pages: int = 50,
    ):
        self._rng = rng
        self._topics = topics
        self._concepts = concepts
        self._vocabulary = vocabulary
        self._page_words = page_words
        self._max_focus_pages = max_focus_pages
        self._max_incidental_pages = max_incidental_pages

    def _page_body(self, topic_ids: Sequence[int]) -> List[str]:
        count = int(self._rng.integers(*self._page_words))
        return _filler_words(
            self._rng, self._topics, topic_ids, self._vocabulary, count
        )

    def _make_page(
        self,
        doc_id: int,
        topic_ids: Tuple[int, ...],
        embedded: List[Tuple[Concept, float, int]],
    ) -> GeneratedDocument:
        filler = self._page_body(topic_ids)
        insertions: List[Tuple[int, object]] = []
        for concept, relevance, occurrences in embedded:
            for __ in range(occurrences):
                position = int(self._rng.integers(0, max(1, len(filler))))
                insertions.append((position, (concept, relevance)))
        stream = _splice(filler, insertions)
        text, mentions = _render_stream(stream, self._rng)
        return GeneratedDocument(
            doc_id=doc_id, topics=topic_ids, text=text, mentions=mentions
        )

    def generate(self, topic_page_count: int) -> List[GeneratedDocument]:
        """Generate the full corpus: topic, focus, and incidental pages."""
        rng = self._rng
        documents: List[GeneratedDocument] = []
        doc_id = 0

        for __ in range(topic_page_count):
            topic_id = int(rng.integers(len(self._topics)))
            candidates = concepts_for_topic(self._concepts, topic_id)
            embedded: List[Tuple[Concept, float, int]] = []
            if candidates:
                how_many = int(rng.integers(0, min(4, len(candidates)) + 1))
                picks = rng.choice(len(candidates), size=how_many, replace=False)
                for i in picks:
                    concept = candidates[int(i)]
                    embedded.append(
                        (concept, _mention_relevance(rng, concept, (topic_id,)), 1)
                    )
            documents.append(self._make_page(doc_id, (topic_id,), embedded))
            doc_id += 1

        for concept in self._concepts:
            focus_pages = self._focus_page_count(concept)
            for __ in range(focus_pages):
                home = concept.home_topics or (int(rng.integers(len(self._topics))),)
                occurrences = int(rng.integers(2, 5))
                documents.append(
                    self._make_page(
                        doc_id,
                        tuple(home),
                        [(concept, 1.0, occurrences)],
                    )
                )
                doc_id += 1

            incidental_pages = self._incidental_page_count(concept)
            for __ in range(incidental_pages):
                foreign = int(rng.integers(len(self._topics)))
                relevance = _mention_relevance(rng, concept, (foreign,))
                documents.append(
                    self._make_page(doc_id, (foreign,), [(concept, relevance, 1)])
                )
                doc_id += 1

        return documents

    def _focus_page_count(self, concept: Concept) -> int:
        """Coherent pages *about* the concept.

        Grows with interestingness (popular things get written about)
        and with specificity (focused concepts produce focused pages) —
        this concentration is what makes the Table II summations of
        specific concepts large.
        """
        if concept.is_junk:
            return 0
        base = 8 + concept.interestingness * concept.specificity * (
            self._max_focus_pages - 8
        )
        return int(round(base))

    def _incidental_page_count(self, concept: Concept) -> int:
        """Topically scattered pages merely containing the phrase.

        Grows as specificity falls, so general and junk concepts return
        *more* (but incoherent) results — preserving feature 4's
        "fewer results = more specific" direction.
        """
        spread = (1.0 - concept.specificity) * self._max_incidental_pages
        jitter = float(self._rng.uniform(0.6, 1.4))
        return int(round(spread * jitter))
