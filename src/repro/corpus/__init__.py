"""Synthetic world substrate.

Substitutes for every proprietary corpus resource the paper consumes:
the web corpus (idf source and search-engine backing store), the concept
universe with latent interestingness/relevance, editorial dictionaries,
Wikipedia, and the news stories that Contextual Shortcuts annotates.
See DESIGN.md section 2 for the substitution rationale.
"""

from repro.corpus.concepts import (
    TAXONOMY_TYPES,
    Concept,
    concepts_for_topic,
    generate_concepts,
)
from repro.corpus.dictionaries import DictionaryEntry, EditorialDictionary
from repro.corpus.documents import (
    ConceptMention,
    GeneratedDocument,
    StoryGenerator,
    WebCorpusGenerator,
)
from repro.corpus.topics import Topic, generate_topics, sample_topic_mixture
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.wikipedia import WikipediaStore
from repro.corpus.world import SyntheticWorld, WorldConfig

__all__ = [
    "TAXONOMY_TYPES",
    "Concept",
    "concepts_for_topic",
    "generate_concepts",
    "DictionaryEntry",
    "EditorialDictionary",
    "ConceptMention",
    "GeneratedDocument",
    "StoryGenerator",
    "WebCorpusGenerator",
    "Topic",
    "generate_topics",
    "sample_topic_mixture",
    "Vocabulary",
    "WikipediaStore",
    "SyntheticWorld",
    "WorldConfig",
]
