"""Synthetic Wikipedia store.

The paper uses one Wikipedia-derived feature: the word count of the
article returned for a concept, 0 when no article exists (feature 9,
citing Hu et al.'s finding that article length proxies quality).  We
model a Wikipedia in which article *presence* and *length* both grow
with a concept's latent interestingness, with noise — popular things
get long articles, junk phrases get none.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.corpus.concepts import Concept
from repro.corpus.topics import Topic
from repro.corpus.vocabulary import Vocabulary
from repro.corpus.documents import _filler_words


class WikipediaStore:
    """Phrase -> article lookup with word counts."""

    def __init__(self, articles: Dict[str, str]):
        self._articles = dict(articles)

    def __len__(self) -> int:
        return len(self._articles)

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._articles

    def article(self, phrase: str) -> Optional[str]:
        """The article text for *phrase*, or None."""
        return self._articles.get(phrase.lower())

    def word_count(self, phrase: str) -> int:
        """Number of words in the article for *phrase* (0 if absent)."""
        text = self._articles.get(phrase.lower())
        if text is None:
            return 0
        return len(text.split())

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        concepts: Sequence[Concept],
        topics: Sequence[Topic],
        vocabulary: Vocabulary,
        presence_floor: float = 0.15,
        max_article_words: int = 3000,
    ) -> "WikipediaStore":
        """Build a store over the concept universe.

        P(article exists) = presence_floor + (1-floor) * interestingness;
        article length ~ interestingness * max words, log-normal jitter.
        Junk concepts never have articles.
        """
        articles: Dict[str, str] = {}
        for concept in concepts:
            if concept.is_junk:
                continue
            presence = presence_floor + (1 - presence_floor) * concept.interestingness
            if rng.random() >= presence:
                continue
            base_length = 60 + concept.interestingness * max_article_words
            length = int(base_length * float(rng.lognormal(0.0, 0.4)))
            length = max(30, min(length, max_article_words * 2))
            topic_ids = concept.home_topics or (int(rng.integers(len(topics))),)
            body = _filler_words(rng, topics, topic_ids, vocabulary, length)
            articles[concept.phrase.lower()] = " ".join(body)
        return cls(articles)
