"""Topic model for the synthetic world.

Each topic owns a set of characteristic content words with internal
sampling weights.  Stories and web documents about a topic draw most of
their content words from the topic's word set, mixed with Zipfian
background words and stopwords, which is what gives the relevant-keyword
mining (paper Section IV-B) something to cluster on: documents about
the same topic share distinctive, high-idf terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.corpus.vocabulary import Vocabulary


@dataclass
class Topic:
    """A topic: a named bag of characteristic words with weights."""

    topic_id: int
    name: str
    words: Tuple[str, ...]
    weights: np.ndarray = field(repr=False)

    def sample_words(self, rng: np.random.Generator, count: int) -> List[str]:
        """Draw *count* words from the topic's internal distribution."""
        indices = rng.choice(len(self.words), size=count, p=self.weights)
        return [self.words[i] for i in indices]


def generate_topics(
    rng: np.random.Generator,
    vocabulary: Vocabulary,
    count: int,
    words_per_topic: int = 80,
) -> List[Topic]:
    """Carve *count* topics out of *vocabulary*.

    Topic words are drawn Zipf-weighted but biased away from the very
    head of the distribution (the head serves as shared background), so
    topics are distinctive.  Topics may overlap slightly in vocabulary,
    as real topics do.
    """
    head_cutoff = max(10, len(vocabulary) // 50)
    eligible = vocabulary.words[head_cutoff:]
    if words_per_topic > len(eligible):
        raise ValueError("vocabulary too small for requested topic size")
    topics: List[Topic] = []
    for topic_id in range(count):
        chosen = rng.choice(len(eligible), size=words_per_topic, replace=False)
        words = tuple(eligible[i] for i in chosen)
        # fairly flat within-topic weights: a topic's signal comes from
        # *many* moderately frequent words, so scattered (junk) snippet
        # sets cannot pick up a handful of heavy hitters per topic
        raw = rng.dirichlet(np.full(words_per_topic, 2.0))
        topics.append(
            Topic(
                topic_id=topic_id,
                name=f"topic-{topic_id:03d}",
                words=words,
                weights=raw,
            )
        )
    return topics


def sample_topic_mixture(
    rng: np.random.Generator, topics: Sequence[Topic], max_topics: int = 2
) -> Tuple[int, ...]:
    """Pick 1..max_topics distinct topic ids for a document."""
    count = 1 if max_topics == 1 or rng.random() < 0.7 else 2
    chosen = rng.choice(len(topics), size=min(count, len(topics)), replace=False)
    return tuple(int(i) for i in chosen)
