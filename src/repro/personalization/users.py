"""Synthetic user population with topic-interest profiles.

The paper's interestingness targets "a broad user base" and defers
per-user modelling: "In cases where the application supports a user
login, we believe that personalization and collaborative filtering
techniques can greatly improve this prediction for individuals by
analyzing the history of actions taken" (Section IV-C).

The substitute population: each user carries a sparse Dirichlet
affinity over topics plus an activity level.  A user's click
probability on a concept blends the global latent interestingness with
their personal affinity for the concept's home topics — so per-user
history genuinely contains signal a personalized model can recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.corpus.concepts import Concept


@dataclass(frozen=True)
class UserProfile:
    """One user: topic affinities in [0, 1] and an activity level."""

    user_id: int
    topic_affinity: np.ndarray  # one weight per topic, sums to 1
    activity: float  # relative volume of story views

    def affinity_for(self, concept: Concept) -> float:
        """The user's interest multiplier source for *concept*.

        Max affinity over the concept's home topics, rescaled so an
        average topic scores ~1/T.
        """
        if not concept.home_topics:
            return float(self.topic_affinity.mean())
        return float(
            max(self.topic_affinity[topic] for topic in concept.home_topics)
        )


def generate_users(
    rng: np.random.Generator,
    topic_count: int,
    count: int,
    concentration: float = 0.15,
) -> List[UserProfile]:
    """Generate *count* users with sparse topic interests.

    A small Dirichlet concentration gives each user a handful of pet
    topics — the structure collaborative filtering exploits.
    """
    if topic_count <= 0 or count <= 0:
        raise ValueError("topic_count and count must be positive")
    users: List[UserProfile] = []
    for user_id in range(count):
        affinity = rng.dirichlet(np.full(topic_count, concentration))
        activity = float(rng.lognormal(0.0, 0.6))
        users.append(
            UserProfile(
                user_id=user_id,
                topic_affinity=affinity,
                activity=activity,
            )
        )
    return users


def personal_interest(
    user: UserProfile,
    concept: Concept,
    topic_count: int,
    personalization_weight: float = 0.6,
) -> float:
    """The user's effective interest in *concept*.

    Blend of the population-level latent interestingness and the user's
    topic affinity (scaled so that a uniform user reproduces the global
    interestingness exactly).
    """
    baseline = concept.interestingness
    # affinity of a uniform user would be 1/topic_count; normalize to 1
    personal = user.affinity_for(concept) * topic_count
    blended = baseline * (
        (1.0 - personalization_weight) + personalization_weight * personal
    )
    return float(np.clip(blended, 0.0, 1.0))
