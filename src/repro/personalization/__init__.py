"""Personalization extension (paper Section IV-C future work):
user profiles, per-user interaction history, collaborative filtering."""

from repro.personalization.cf import (
    FactorizationModel,
    PersonalizedScorer,
    factorize,
)
from repro.personalization.history import (
    InteractionMatrix,
    PersonalizedClickSimulator,
)
from repro.personalization.users import (
    UserProfile,
    generate_users,
    personal_interest,
)

__all__ = [
    "FactorizationModel",
    "PersonalizedScorer",
    "factorize",
    "InteractionMatrix",
    "PersonalizedClickSimulator",
    "UserProfile",
    "generate_users",
    "personal_interest",
]
