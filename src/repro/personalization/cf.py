"""Collaborative filtering over user x concept interactions.

Weighted matrix factorization in the implicit-feedback style
(Hu/Koren/Volinsky): observed cells are per-user CTRs, confidence grows
with view counts, and alternating least squares learns low-rank user
and concept factors.  ``PersonalizedScorer`` then blends the per-user
predicted preference into the global ranker's score — the exact
improvement path the paper sketches for logged-in applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.personalization.history import InteractionMatrix


@dataclass
class FactorizationModel:
    """Learned biases and low-rank user/concept factors.

    Prediction decomposes as ``global + concept_bias + u . v``; the
    factor term is the *personal* deviation, cleanly separated from
    concept popularity, which is what a personalized ranker adds on top
    of the global model.
    """

    user_factors: np.ndarray  # (users, rank)
    concept_factors: np.ndarray  # (concepts, rank)
    global_mean: float
    concept_bias: Optional[np.ndarray] = None  # (concepts,)

    def __post_init__(self):
        if self.concept_bias is None:
            self.concept_bias = np.zeros(self.concept_factors.shape[0])

    def predict(self, user_id: int, concept_id: int) -> float:
        """Predicted preference (CTR scale) for one cell."""
        return float(
            self.global_mean
            + self.concept_bias[concept_id]
            + self.user_factors[user_id] @ self.concept_factors[concept_id]
        )

    def predict_user(self, user_id: int) -> np.ndarray:
        """Predicted preferences of one user over all concepts."""
        return (
            self.global_mean
            + self.concept_bias
            + self.concept_factors @ self.user_factors[user_id]
        )

    def personal_deviation(self, user_id: int, concept_id: int) -> float:
        """The user-specific preference component (popularity removed)."""
        return float(
            self.user_factors[user_id] @ self.concept_factors[concept_id]
        )


def factorize(
    matrix: InteractionMatrix,
    rank: int = 8,
    iterations: int = 12,
    regularization: float = 0.5,
    confidence_scale: float = 0.05,
    seed: int = 0,
) -> FactorizationModel:
    """Weighted ALS on the centred CTR matrix.

    Confidence per cell is ``1 + confidence_scale * views`` for observed
    cells and ~0 for unobserved ones, so the factors explain the cells
    a user actually saw.
    """
    observed = matrix.observed_mask()
    if not observed.any():
        raise ValueError("interaction matrix has no observations")
    ctr = matrix.ctr()
    global_mean = float(ctr[observed].mean())
    confidence = np.where(observed, 1.0 + confidence_scale * matrix.views, 0.0)
    # concept (item) popularity bias: weighted mean residual per concept
    weight_sums = confidence.sum(axis=0)
    centred = np.where(observed, ctr - global_mean, 0.0)
    concept_bias = np.where(
        weight_sums > 0,
        (centred * confidence).sum(axis=0) / np.maximum(weight_sums, 1e-12),
        0.0,
    )
    residual = np.where(observed, ctr - global_mean - concept_bias[None, :], 0.0)

    rng = np.random.default_rng(seed)
    users, concepts = residual.shape
    user_factors = rng.normal(scale=0.05, size=(users, rank))
    concept_factors = rng.normal(scale=0.05, size=(concepts, rank))
    eye = np.eye(rank)

    for __ in range(iterations):
        # solve users given concepts
        for user in range(users):
            weights = confidence[user]
            mask = weights > 0
            if not mask.any():
                user_factors[user] = 0.0
                continue
            factors = concept_factors[mask]
            weighted = factors * weights[mask][:, None]
            gram = factors.T @ weighted + regularization * eye
            rhs = weighted.T @ residual[user, mask]
            user_factors[user] = np.linalg.solve(gram, rhs)
        # solve concepts given users
        for concept in range(concepts):
            weights = confidence[:, concept]
            mask = weights > 0
            if not mask.any():
                concept_factors[concept] = 0.0
                continue
            factors = user_factors[mask]
            weighted = factors * weights[mask][:, None]
            gram = factors.T @ weighted + regularization * eye
            rhs = weighted.T @ residual[mask, concept]
            concept_factors[concept] = np.linalg.solve(gram, rhs)

    return FactorizationModel(
        user_factors=user_factors,
        concept_factors=concept_factors,
        global_mean=global_mean,
        concept_bias=concept_bias,
    )


class PersonalizedScorer:
    """Blends per-user CF preference into global ranking scores."""

    def __init__(
        self,
        model: FactorizationModel,
        concept_index: dict,
        strength: float = 1.0,
    ):
        self._model = model
        self._concept_index = dict(concept_index)  # phrase -> concept_id
        self.strength = strength
        # normalize CF predictions to roughly unit scale
        spread = float(np.abs(model.concept_factors).mean() + 1e-12)
        self._scale = 1.0 / spread if spread > 0 else 1.0

    def personal_adjustment(self, user_id: int, phrase: str) -> float:
        concept_id = self._concept_index.get(phrase.lower())
        if concept_id is None:
            return 0.0
        deviation = self._model.personal_deviation(user_id, concept_id)
        return self.strength * deviation * self._scale

    def adjust_scores(
        self,
        user_id: int,
        phrases: Sequence[str],
        scores: Sequence[float],
    ) -> np.ndarray:
        if len(phrases) != len(scores):
            raise ValueError("phrases and scores must align")
        return np.asarray(
            [
                float(score) + self.personal_adjustment(user_id, phrase)
                for phrase, score in zip(phrases, scores)
            ]
        )
