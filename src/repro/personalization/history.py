"""Per-user interaction history: the input to collaborative filtering.

Simulates logged-in users reading annotated stories.  Each (user,
story) exposure rolls clicks on the story's annotated entities with a
click probability driven by the *user's* effective interest (see
:func:`repro.personalization.users.personal_interest`) times the usual
relevance and position factors.  The aggregated user x concept counters
form the interaction matrix that matrix factorization consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.clicks.model import UserClickModel
from repro.corpus.documents import GeneratedDocument
from repro.corpus.world import SyntheticWorld
from repro.detection.pipeline import ShortcutsPipeline
from repro.personalization.users import UserProfile, personal_interest


@dataclass
class InteractionMatrix:
    """Aggregated per-user, per-concept views and clicks."""

    user_count: int
    concept_count: int
    views: np.ndarray = field(default=None)
    clicks: np.ndarray = field(default=None)

    def __post_init__(self):
        if self.views is None:
            self.views = np.zeros((self.user_count, self.concept_count))
        if self.clicks is None:
            self.clicks = np.zeros((self.user_count, self.concept_count))

    def add(self, user_id: int, concept_id: int, views: int, clicks: int) -> None:
        self.views[user_id, concept_id] += views
        self.clicks[user_id, concept_id] += clicks

    def ctr(self) -> np.ndarray:
        """Per-cell CTR (0 where unobserved)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            ctr = np.where(self.views > 0, self.clicks / np.maximum(self.views, 1), 0.0)
        return ctr

    def observed_mask(self) -> np.ndarray:
        return self.views > 0

    @property
    def density(self) -> float:
        return float(self.observed_mask().mean())


class PersonalizedClickSimulator:
    """Simulates logged-in reading sessions over annotated stories."""

    def __init__(
        self,
        world: SyntheticWorld,
        pipeline: ShortcutsPipeline,
        users: Sequence[UserProfile],
        click_model: UserClickModel,
        personalization_weight: float = 0.6,
        views_per_session: int = 1,
    ):
        self._world = world
        self._pipeline = pipeline
        self._users = list(users)
        self._clicks = click_model
        self.personalization_weight = personalization_weight
        self.views_per_session = views_per_session
        self._concept_ids: Dict[str, int] = {
            c.phrase.lower(): c.concept_id for c in world.concepts
        }

    def simulate(
        self,
        stories: Sequence[GeneratedDocument],
        sessions: int,
        seed: int = 0,
    ) -> InteractionMatrix:
        """Run *sessions* (user, story) exposures and aggregate."""
        rng = np.random.default_rng(seed)
        matrix = InteractionMatrix(
            user_count=len(self._users),
            concept_count=len(self._world.concepts),
        )
        activities = np.asarray([u.activity for u in self._users])
        user_probabilities = activities / activities.sum()
        annotated_cache: Dict[int, List[Tuple[int, int]]] = {}
        topic_count = len(self._world.topics)

        for __ in range(sessions):
            user = self._users[int(rng.choice(len(self._users), p=user_probabilities))]
            story = stories[int(rng.integers(len(stories)))]
            detections = annotated_cache.get(story.doc_id)
            if detections is None:
                annotated = self._pipeline.process(story.text)
                detections = [
                    (self._concept_ids[d.phrase], d.start)
                    for d in annotated.rankable()
                    if d.phrase in self._concept_ids
                ]
                annotated_cache[story.doc_id] = detections
            for concept_id, position in detections:
                concept = self._world.concepts[concept_id]
                interest = personal_interest(
                    user,
                    concept,
                    topic_count,
                    self.personalization_weight,
                )
                relevance = story.relevance_of(concept_id)
                probability = self._clicks.click_probability(
                    interest,
                    relevance if relevance > 0 else self._clicks.config.default_relevance,
                    position,
                    noisy=True,
                )
                clicks = self._clicks.sample_clicks(
                    probability, self.views_per_session
                )
                matrix.add(
                    user.user_id, concept_id, self.views_per_session, clicks
                )
        return matrix
