"""Click substrate: user model, production tracking, dataset assembly."""

from repro.clicks.dataset import (
    WINDOW_CHARS,
    WINDOW_OVERLAP,
    ClickDataset,
    FilterRules,
    Window,
    build_windows,
    filter_records,
)
from repro.clicks.model import ClickModelConfig, UserClickModel
from repro.clicks.online import OnlineCtrTracker, OnlineScoreAdjuster
from repro.clicks.tracking import (
    ClickTracker,
    EntityObservation,
    StoryClickRecord,
)

__all__ = [
    "WINDOW_CHARS",
    "WINDOW_OVERLAP",
    "ClickDataset",
    "FilterRules",
    "Window",
    "build_windows",
    "filter_records",
    "ClickModelConfig",
    "UserClickModel",
    "OnlineCtrTracker",
    "OnlineScoreAdjuster",
    "ClickTracker",
    "EntityObservation",
    "StoryClickRecord",
]
