"""The ground-truth user click model.

The paper's training signal is CTR from real users.  Our substitute is
an explicit user model whose click probability is driven by exactly the
two latent qualities the paper argues CTR reflects:

    "The assumption is that the more relevant an entity is to the topic
    of the document and the more interesting it is to the general user
    base, the more clicks it will ultimately get."

plus the positioning bias the paper corrects for with windowing ("the
first entities in a document may get an unfair share of user
attention").  Concretely, for an entity at character position p:

    P(click | view) = floor + ctr_max * I^a * R^b * exp(-p / decay)

with latent interestingness I, latent mention relevance R.  Views per
story are heavy-tailed (log-normal); clicks are binomial.  Nothing the
rankers see is derived from I or R directly — only through this noisy
click channel, as in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.corpus.concepts import Concept


@dataclass(frozen=True)
class ClickModelConfig:
    """Parameters of the simulated user population."""

    ctr_max: float = 0.10
    interest_exponent: float = 1.3
    relevance_exponent: float = 0.85
    position_decay_chars: float = 4000.0
    noise_floor: float = 0.003
    # per-(entity, story) appeal noise: users' unmodeled whims
    appeal_noise_sigma: float = 0.35
    view_log_mean: float = 4.2  # median ~66 views per sampled story
    view_log_sigma: float = 1.0
    # latent relevance assumed for a detection with no ground-truth mention
    default_relevance: float = 0.05


class UserClickModel:
    """Samples views and clicks for annotated entities."""

    def __init__(self, config: ClickModelConfig = ClickModelConfig(),
                 seed: int = 97):
        self.config = config
        self._rng = np.random.default_rng(seed)

    def click_probability(
        self, interestingness: float, relevance: float, position: int,
        noisy: bool = False,
    ) -> float:
        """The latent CTR of one entity occurrence.

        With ``noisy=True`` a per-call log-normal appeal factor is
        applied — the unmodeled variation in how a specific entity lands
        on a specific page's audience.
        """
        cfg = self.config
        decay = float(np.exp(-max(position, 0) / cfg.position_decay_chars))
        p = cfg.noise_floor + cfg.ctr_max * (
            max(interestingness, 0.0) ** cfg.interest_exponent
        ) * (max(relevance, 0.0) ** cfg.relevance_exponent) * decay
        if noisy and cfg.appeal_noise_sigma > 0:
            p *= float(self._rng.lognormal(0.0, cfg.appeal_noise_sigma))
        return float(min(p, 1.0))

    def sample_views(self) -> int:
        """Views of one sampled story (heavy-tailed)."""
        cfg = self.config
        return max(
            1, int(self._rng.lognormal(cfg.view_log_mean, cfg.view_log_sigma))
        )

    def sample_clicks(self, probability: float, views: int) -> int:
        """Clicks on one entity over *views* story views."""
        return int(self._rng.binomial(views, min(max(probability, 0.0), 1.0)))

    def entity_clicks(
        self,
        concept: Concept,
        relevance: Optional[float],
        position: int,
        views: int,
        interest_boost: float = 1.0,
    ) -> int:
        """Convenience: clicks for a concept occurrence.

        *interest_boost* models breaking-news weeks: a world event
        multiplies the concept's effective interestingness (capped at 1).
        """
        latent_relevance = (
            relevance if relevance is not None else self.config.default_relevance
        )
        probability = self.click_probability(
            min(1.0, concept.interestingness * interest_boost),
            latent_relevance,
            position,
            noisy=True,
        )
        return self.sample_clicks(probability, views)
