"""Training/evaluation dataset construction from click records.

Implements the data pre-processing of Section V-A.1:

* **noise filters** — a story is ignored if (1) it has fewer than 30
  sampled views, (2) it contains only one concept, or (3) no concept on
  the page has more than three sampled clicks;
* **windowing** — "to avoid the positioning bias inherent in working
  with user click data ... we partitioned large documents into windows
  of size 2500 characters", with 500-character overlap so neighbouring
  concepts are not separated.

Each window becomes one ranking group: preference pairs are only formed
between entities competing on the same (part of a) page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.clicks.tracking import EntityObservation, StoryClickRecord

WINDOW_CHARS = 2500
WINDOW_OVERLAP = 500


@dataclass(frozen=True)
class FilterRules:
    """The paper's three noise filters."""

    min_views: int = 30
    min_concepts: int = 2
    min_top_clicks: int = 4  # "no concept has more than three sampled clicks"


def filter_records(
    records: Sequence[StoryClickRecord], rules: FilterRules = FilterRules()
) -> List[StoryClickRecord]:
    """Drop stories failing any of the noise filters."""
    kept: List[StoryClickRecord] = []
    for record in records:
        if record.views < rules.min_views:
            continue
        if len(record.entities) < rules.min_concepts:
            continue
        if record.max_clicks() < rules.min_top_clicks:
            continue
        kept.append(record)
    return kept


@dataclass
class Window:
    """One ranking group: a character window of a story with its entities."""

    window_id: int
    story_id: int
    text: str
    char_start: int
    entities: List[EntityObservation] = field(default_factory=list)


def build_windows(
    records: Sequence[StoryClickRecord],
    window_chars: int = WINDOW_CHARS,
    overlap: int = WINDOW_OVERLAP,
) -> List[Window]:
    """Partition stories into overlapping character windows.

    Entities land in every window containing their annotated position;
    windows that end up with fewer than two entities are dropped (no
    preference pairs can be formed there).
    """
    if overlap >= window_chars:
        raise ValueError("overlap must be smaller than the window size")
    windows: List[Window] = []
    next_id = 0
    step = window_chars - overlap
    for record in records:
        length = len(record.text)
        starts = [0]
        while starts[-1] + window_chars < length:
            starts.append(starts[-1] + step)
        for start in starts:
            end = min(start + window_chars, length)
            inside = [
                entity
                for entity in record.entities
                if start <= entity.position < end
            ]
            if len(inside) < 2:
                continue
            windows.append(
                Window(
                    window_id=next_id,
                    story_id=record.story_id,
                    text=record.text[start:end],
                    char_start=start,
                    entities=inside,
                )
            )
            next_id += 1
    return windows


@dataclass
class ClickDataset:
    """The assembled dataset: filtered stories, windowed ranking groups."""

    records: List[StoryClickRecord]
    windows: List[Window]

    @property
    def story_count(self) -> int:
        return len(self.records)

    @property
    def window_count(self) -> int:
        return len(self.windows)

    @property
    def entity_count(self) -> int:
        return sum(len(record.entities) for record in self.records)

    @property
    def total_clicks(self) -> int:
        return sum(record.total_clicks for record in self.records)

    @classmethod
    def from_records(
        cls,
        records: Sequence[StoryClickRecord],
        rules: FilterRules = FilterRules(),
        window_chars: int = WINDOW_CHARS,
        overlap: int = WINDOW_OVERLAP,
    ) -> "ClickDataset":
        """Apply the noise filters, then window the surviving stories."""
        kept = filter_records(records, rules)
        windows = build_windows(kept, window_chars=window_chars, overlap=overlap)
        return cls(records=kept, windows=windows)
