"""Click tracking: the instrumentation of Contextual Shortcuts.

Production Shortcuts on Yahoo! News embed tracking pixels in randomly
sampled stories; the mined weekly reports contain (Section III):

* the text of the news story,
* the annotated entities with metadata (taxonomy type, position),
* the number of times each entity was viewed (= story views),
* the number of times each entity was clicked.

``ClickTracker`` reproduces that: it runs the baseline pipeline over
generated stories, samples views, rolls clicks from the latent click
model, and emits :class:`StoryClickRecord` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.clicks.model import UserClickModel
from repro.corpus.documents import GeneratedDocument
from repro.corpus.world import SyntheticWorld
from repro.detection.pipeline import ShortcutsPipeline


@dataclass(frozen=True)
class EntityObservation:
    """One annotated entity's tracked counters in one story."""

    phrase: str
    concept_id: Optional[int]
    entity_type: Optional[str]
    position: int  # character offset of the annotated occurrence
    baseline_score: float  # concept-vector score assigned in production
    views: int
    clicks: int

    @property
    def ctr(self) -> float:
        """Click-through rate: clicks / views."""
        return self.clicks / self.views if self.views else 0.0


@dataclass
class StoryClickRecord:
    """The weekly-report row for one sampled story."""

    story_id: int
    text: str
    views: int
    entities: List[EntityObservation] = field(default_factory=list)

    @property
    def total_clicks(self) -> int:
        return sum(entity.clicks for entity in self.entities)

    def max_clicks(self) -> int:
        return max((entity.clicks for entity in self.entities), default=0)


class ClickTracker:
    """Annotates stories with the baseline pipeline and simulates users."""

    def __init__(
        self,
        world: SyntheticWorld,
        pipeline: ShortcutsPipeline,
        click_model: UserClickModel,
        annotate_top: Optional[int] = None,
        ranker=None,
        interest_boosts: Optional[Dict[int, float]] = None,
    ):
        self._world = world
        self._pipeline = pipeline
        self._clicks = click_model
        self.annotate_top = annotate_top  # None = annotate everything (baseline)
        # optional ConceptRanker; None = rank by concept-vector score
        self._ranker = ranker
        # concept_id -> effective-interestingness multiplier (world events)
        self._interest_boosts = dict(interest_boosts or {})
        self._concept_ids: Dict[str, int] = {
            concept.phrase.lower(): concept.concept_id
            for concept in world.concepts
        }

    def track_story(self, story: GeneratedDocument) -> StoryClickRecord:
        """One story through annotation + user simulation."""
        annotated = self._pipeline.process(story.text)
        if self._ranker is not None:
            detections = self._ranker.rank_document(annotated)
        else:
            detections = annotated.by_concept_vector_score()
        if self.annotate_top is not None:
            detections = detections[: self.annotate_top]
        views = self._clicks.sample_views()

        entities: List[EntityObservation] = []
        for detection in sorted(detections, key=lambda d: d.start):
            concept_id = self._concept_ids.get(detection.phrase)
            if concept_id is None:
                continue
            concept = self._world.concepts[concept_id]
            relevance = story.relevance_of(concept_id)
            clicks = self._clicks.entity_clicks(
                concept,
                relevance if relevance > 0 else None,
                detection.start,
                views,
                interest_boost=self._interest_boosts.get(concept_id, 1.0),
            )
            entities.append(
                EntityObservation(
                    phrase=detection.phrase,
                    concept_id=concept_id,
                    entity_type=detection.entity_type,
                    position=detection.start,
                    baseline_score=detection.score,
                    views=views,
                    clicks=clicks,
                )
            )
        return StoryClickRecord(
            story_id=story.doc_id, text=story.text, views=views, entities=entities
        )

    def track(self, stories: Sequence[GeneratedDocument]) -> List[StoryClickRecord]:
        """The weekly report for a batch of sampled stories."""
        return [self.track_story(story) for story in stories]
