"""Online CTR feedback (the paper's Section VIII future work).

"In this scenario, the system would be able to respond to sudden
fluctuations in click data, either boosting scores of low scoring
concepts that are experiencing high CTRs, or punishing the scores of
those experiencing low CTRs.  This may allow the system to potentially
react intelligently to world events in real time."

``OnlineCtrTracker`` maintains exponentially-decayed view/click
counters per concept; ``OnlineScoreAdjuster`` turns the live CTR into a
multiplicative boost around the offline model's score.  Empirical-Bayes
shrinkage toward the global CTR keeps low-traffic concepts stable, so a
handful of early clicks cannot hijack the ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass
class _ConceptCounters:
    views: float = 0.0
    clicks: float = 0.0


class OnlineCtrTracker:
    """Exponentially-decayed live CTR per concept.

    *half_life_views* is the volume of global views over which old
    evidence loses half its weight — decay is traffic-driven, not
    wall-clock-driven, so quiet periods do not erase knowledge.
    """

    def __init__(self, half_life_views: float = 20000.0):
        if half_life_views <= 0:
            raise ValueError("half_life_views must be positive")
        self.half_life_views = half_life_views
        self._counters: Dict[str, _ConceptCounters] = {}
        self._global = _ConceptCounters()

    def _decay_factor(self, new_views: float) -> float:
        return 0.5 ** (new_views / self.half_life_views)

    def observe(self, phrase: str, views: int, clicks: int) -> None:
        """Fold one tracking report into the live counters."""
        if views < 0 or clicks < 0 or clicks > views:
            raise ValueError("need 0 <= clicks <= views")
        factor = self._decay_factor(views)
        for counters in self._counters.values():
            counters.views *= factor
            counters.clicks *= factor
        self._global.views = self._global.views * factor + views
        self._global.clicks = self._global.clicks * factor + clicks
        concept = self._counters.setdefault(phrase.lower(), _ConceptCounters())
        concept.views += views
        concept.clicks += clicks

    def observe_report(self, record) -> None:
        """Fold a :class:`~repro.clicks.tracking.StoryClickRecord`."""
        for entity in record.entities:
            self.observe(entity.phrase, entity.views, entity.clicks)

    @property
    def global_ctr(self) -> float:
        if self._global.views <= 0:
            return 0.0
        return self._global.clicks / self._global.views

    def views(self, phrase: str) -> float:
        counters = self._counters.get(phrase.lower())
        return counters.views if counters else 0.0

    def ctr(self, phrase: str, prior_views: float = 200.0) -> float:
        """Shrunk live CTR: empirical-Bayes blend with the global CTR.

        With *prior_views* pseudo-views at the global CTR, a concept's
        live estimate only departs from the prior once it has real
        traffic.
        """
        counters = self._counters.get(phrase.lower())
        prior_clicks = self.global_ctr * prior_views
        if counters is None:
            views, clicks = 0.0, 0.0
        else:
            views, clicks = counters.views, counters.clicks
        total_views = views + prior_views
        if total_views <= 0:
            return 0.0
        return (clicks + prior_clicks) / total_views


class OnlineScoreAdjuster:
    """Boost/punish offline ranking scores by live CTR evidence.

    adjusted = score + strength * log(live_ctr / global_ctr)

    A concept clicking at the global rate is untouched; one clicking at
    twice the rate gains ``strength * log 2``.  Scores arrive from the
    RankSVM decision function (an additive margin scale), so an additive
    log-ratio adjustment composes naturally.
    """

    def __init__(self, tracker: OnlineCtrTracker, strength: float = 0.5,
                 max_ratio: float = 8.0):
        self._tracker = tracker
        self.strength = strength
        self.max_ratio = max_ratio

    def adjustment(self, phrase: str) -> float:
        global_ctr = self._tracker.global_ctr
        if global_ctr <= 0:
            return 0.0
        live = self._tracker.ctr(phrase)
        if live <= 0:
            return -self.strength * math.log(self.max_ratio)
        ratio = live / global_ctr
        ratio = min(max(ratio, 1.0 / self.max_ratio), self.max_ratio)
        return self.strength * math.log(ratio)

    def adjust_scores(
        self, phrases: Sequence[str], scores: Sequence[float]
    ) -> List[float]:
        """Apply the live adjustment to a batch of (phrase, score)."""
        if len(phrases) != len(scores):
            raise ValueError("phrases and scores must align")
        return [
            float(score) + self.adjustment(phrase)
            for phrase, score in zip(phrases, scores)
        ]

    def rerank(
        self, phrases: Sequence[str], scores: Sequence[float]
    ) -> List[Tuple[str, float]]:
        """(phrase, adjusted score) in decreasing adjusted order."""
        adjusted = self.adjust_scores(phrases, scores)
        order = sorted(range(len(phrases)), key=lambda i: -adjusted[i])
        return [(phrases[i], adjusted[i]) for i in order]
