"""Quantized interestingness store (Section VI).

"For each concept we have in the system, we first compute the values
for these features in the offline process, and employ a normalization
that would fit each field to two bytes (this causes a minor decrease in
granularity).  So the interestingness vectors for 1 million concepts
would cost 18MB in memory."

The store keeps one ``uint16`` row of 9 fields per concept and exposes
``extract(phrase)``, making it a drop-in for the live
:class:`~repro.features.interestingness.InterestingnessExtractor` in
the runtime ranker.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.corpus.concepts import TAXONOMY_TYPES
from repro.features.interestingness import (
    InterestingnessExtractor,
    InterestingnessVector,
)
from repro.features.quantize import dequantize, quantize

FIELD_BITS = 16
_NUMERIC_FIELDS = (
    "freq_exact",
    "freq_phrase_contained",
    "unit_score",
    "searchengine_phrase",
    "concept_size",
    "number_of_chars",
    "subconcepts",
    "wiki_word_count",
)
_TYPE_FIELD = len(_NUMERIC_FIELDS)  # taxonomy type stored as an index
FIELD_COUNT = len(_NUMERIC_FIELDS) + 1


class QuantizedInterestingnessStore:
    """Phrase -> 9 x uint16 interestingness fields."""

    def __init__(self, field_max: Sequence[float]):
        if len(field_max) != len(_NUMERIC_FIELDS):
            raise ValueError("one max per numeric field required")
        self._field_max = [max(float(m), 1e-12) for m in field_max]
        self._rows: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._rows

    def add(self, vector: InterestingnessVector) -> None:
        """Quantize and store one concept's feature vector."""
        row = np.zeros(FIELD_COUNT, dtype=np.uint16)
        for index, name in enumerate(_NUMERIC_FIELDS):
            row[index] = quantize(
                float(vector.value(name)), self._field_max[index], FIELD_BITS
            )
        if vector.high_level_type is None:
            row[_TYPE_FIELD] = 0
        else:
            row[_TYPE_FIELD] = 1 + TAXONOMY_TYPES.index(vector.high_level_type)
        self._rows[vector.phrase] = row

    def extract(self, phrase: str) -> InterestingnessVector:
        """Dequantized feature vector (the live-extractor protocol)."""
        row = self._rows.get(phrase.lower())
        if row is None:
            raise KeyError(f"unknown concept: {phrase!r}")
        values = {
            name: dequantize(int(row[index]), self._field_max[index], FIELD_BITS)
            for index, name in enumerate(_NUMERIC_FIELDS)
        }
        type_index = int(row[_TYPE_FIELD])
        return InterestingnessVector(
            phrase=phrase.lower(),
            freq_exact=int(round(values["freq_exact"])),
            freq_phrase_contained=int(round(values["freq_phrase_contained"])),
            unit_score=values["unit_score"],
            searchengine_phrase=int(round(values["searchengine_phrase"])),
            concept_size=int(round(values["concept_size"])),
            number_of_chars=int(round(values["number_of_chars"])),
            subconcepts=int(round(values["subconcepts"])),
            high_level_type=(
                None if type_index == 0 else TAXONOMY_TYPES[type_index - 1]
            ),
            wiki_word_count=int(round(values["wiki_word_count"])),
        )

    def phrases(self) -> List[str]:
        return list(self._rows)

    def memory_bytes(self) -> int:
        """2 bytes per field per concept (the paper's 18 MB / 1M figure)."""
        return len(self._rows) * FIELD_COUNT * 2

    @classmethod
    def build(
        cls,
        extractor: InterestingnessExtractor,
        phrases: Sequence[str],
    ) -> "QuantizedInterestingnessStore":
        """Offline precompute + quantization for an inventory of phrases."""
        vectors = [extractor.extract(phrase) for phrase in phrases]
        field_max = [
            max((float(v.value(name)) for v in vectors), default=1.0) or 1.0
            for name in _NUMERIC_FIELDS
        ]
        store = cls(field_max)
        for vector in vectors:
            store.add(vector)
        return store
