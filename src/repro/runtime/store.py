"""Quantized interestingness store (Section VI).

"For each concept we have in the system, we first compute the values
for these features in the offline process, and employ a normalization
that would fit each field to two bytes (this causes a minor decrease in
granularity).  So the interestingness vectors for 1 million concepts
would cost 18MB in memory."

The store keeps ONE contiguous ``uint16`` matrix of 9 fields per
concept (a fixed-stride columnar arena) plus a phrase -> row table and
exposes ``extract(phrase)``, making it a drop-in for the live
:class:`~repro.features.interestingness.InterestingnessExtractor` in
the runtime ranker.  Data-pack loads adopt the matrix as a zero-copy
view over the mapped pack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.concepts import TAXONOMY_TYPES
from repro.features.interestingness import (
    InterestingnessExtractor,
    InterestingnessVector,
)
from repro.features.quantize import dequantize, quantize
from repro.obs import get_registry

FIELD_BITS = 16
_NUMERIC_FIELDS = (
    "freq_exact",
    "freq_phrase_contained",
    "unit_score",
    "searchengine_phrase",
    "concept_size",
    "number_of_chars",
    "subconcepts",
    "wiki_word_count",
)
_TYPE_FIELD = len(_NUMERIC_FIELDS)  # taxonomy type stored as an index
FIELD_COUNT = len(_NUMERIC_FIELDS) + 1


class QuantizedInterestingnessStore:
    """Phrase -> row in one (concepts x 9) uint16 matrix."""

    def __init__(self, field_max: Sequence[float]):
        if len(field_max) != len(_NUMERIC_FIELDS):
            raise ValueError("one max per numeric field required")
        self._field_max = [max(float(m), 1e-12) for m in field_max]
        self._index: Dict[str, int] = {}
        self._matrix = np.zeros((0, FIELD_COUNT), dtype=np.uint16)
        self._staged: Dict[str, np.ndarray] = {}
        self._backing = None  # keeps a mapped data-pack alive
        self._version = 0  # bumped on every row write (cache invalidation)
        self._m_lookups = get_registry().counter(
            "interestingness_lookups_total",
            help="quantized interestingness vector lookups",
        )

    def __len__(self) -> int:
        return len(self._index) + sum(
            1 for phrase in self._staged if phrase not in self._index
        )

    def __contains__(self, phrase: str) -> bool:
        key = phrase.lower()
        return key in self._staged or key in self._index

    def add(self, vector: InterestingnessVector) -> None:
        """Quantize and store one concept's feature vector."""
        row = np.zeros(FIELD_COUNT, dtype=np.uint16)
        for index, name in enumerate(_NUMERIC_FIELDS):
            row[index] = quantize(
                float(vector.value(name)), self._field_max[index], FIELD_BITS
            )
        if vector.high_level_type is None:
            row[_TYPE_FIELD] = 0
        else:
            row[_TYPE_FIELD] = 1 + TAXONOMY_TYPES.index(vector.high_level_type)
        self._staged[vector.phrase] = row
        self._version += 1

    def _ensure_matrix(self) -> np.ndarray:
        if self._staged:
            fresh: List[np.ndarray] = []
            for phrase, row in self._staged.items():
                existing = self._index.get(phrase)
                if existing is not None:
                    if not self._matrix.flags.writeable:
                        self._matrix = self._matrix.copy()
                    self._matrix[existing] = row
                else:
                    self._index[phrase] = len(self._index)
                    fresh.append(row)
            if fresh:
                self._matrix = (
                    np.vstack([self._matrix] + fresh)
                    if self._matrix.size
                    else np.vstack(fresh).astype(np.uint16, copy=False)
                )
            self._staged = {}
        return self._matrix

    @property
    def feature_version(self) -> int:
        """Monotonic content version.

        Stored rows never change value between versions, so any
        consumer caching derived per-phrase data (e.g. the ranker's
        assembled numeric vectors) can key its cache on this and stay
        exact across ``add`` calls.
        """
        return self._version

    def extract(self, phrase: str) -> InterestingnessVector:
        """Dequantized feature vector (the live-extractor protocol)."""
        self._m_lookups.inc()
        key = phrase.lower()
        row = self._staged.get(key)
        if row is None:
            index = self._index.get(key)
            if index is None:
                raise KeyError(f"unknown concept: {phrase!r}")
            row = self._matrix[index]
        values = {
            name: dequantize(int(row[index]), self._field_max[index], FIELD_BITS)
            for index, name in enumerate(_NUMERIC_FIELDS)
        }
        type_index = int(row[_TYPE_FIELD])
        return InterestingnessVector(
            phrase=key,
            freq_exact=int(round(values["freq_exact"])),
            freq_phrase_contained=int(round(values["freq_phrase_contained"])),
            unit_score=values["unit_score"],
            searchengine_phrase=int(round(values["searchengine_phrase"])),
            concept_size=int(round(values["concept_size"])),
            number_of_chars=int(round(values["number_of_chars"])),
            subconcepts=int(round(values["subconcepts"])),
            high_level_type=(
                None if type_index == 0 else TAXONOMY_TYPES[type_index - 1]
            ),
            wiki_word_count=int(round(values["wiki_word_count"])),
        )

    def phrases(self) -> List[str]:
        self._ensure_matrix()
        return list(self._index)

    def columns(self) -> Tuple[List[str], np.ndarray]:
        """(phrases in row order, uint16 matrix) for persistence."""
        matrix = self._ensure_matrix()
        return list(self._index), matrix

    def field_max(self) -> List[float]:
        """The per-field normalization maxima (persistence metadata)."""
        return list(self._field_max)

    def memory_bytes(self) -> int:
        """2 bytes per field per concept (the paper's 18 MB / 1M figure)."""
        return len(self) * FIELD_COUNT * 2

    @classmethod
    def from_columns(
        cls,
        field_max: Sequence[float],
        phrases: Sequence[str],
        matrix: np.ndarray,
        backing=None,
    ) -> "QuantizedInterestingnessStore":
        """Adopt a ready row matrix (the zero-copy data-pack load path)."""
        if matrix.shape != (len(phrases), FIELD_COUNT):
            raise ValueError("matrix shape does not match the phrase index")
        store = cls(field_max)
        store._index = {phrase: row for row, phrase in enumerate(phrases)}
        store._matrix = matrix
        store._backing = backing
        return store

    @classmethod
    def from_vectors(
        cls, vectors: Sequence[InterestingnessVector]
    ) -> "QuantizedInterestingnessStore":
        """Quantize already-extracted vectors (the offline-builder path)."""
        field_max = [
            max((float(v.value(name)) for v in vectors), default=1.0) or 1.0
            for name in _NUMERIC_FIELDS
        ]
        store = cls(field_max)
        for vector in vectors:
            store.add(vector)
        return store

    @classmethod
    def build(
        cls,
        extractor: InterestingnessExtractor,
        phrases: Sequence[str],
    ) -> "QuantizedInterestingnessStore":
        """Offline precompute + quantization for an inventory of phrases."""
        return cls.from_vectors([extractor.extract(phrase) for phrase in phrases])
