"""The production runtime service (paper Section VI, Figure 4).

Composes the offline-built hash-table stores into the real-time path:

    document --> Stemmer --> detection --> feature lookups --> Ranker

and instruments the two timed components the paper reports (stemmer
and ranker throughput in MB/sec over a document batch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.detection.base import Detection
from repro.detection.pipeline import ShortcutsPipeline
from repro.features.relevance import stemmed_terms
from repro.ranking.model import ConceptRanker, FeatureAssembler
from repro.ranking.ranksvm import RankSVM
from repro.runtime.store import QuantizedInterestingnessStore
from repro.runtime.tid import PackedRelevanceStore


@dataclass
class TimingStats:
    """Accumulated component timings over processed documents."""

    stemmer_seconds: float = 0.0
    ranker_seconds: float = 0.0
    bytes_processed: int = 0
    documents: int = 0
    detections: int = 0

    def _rate(self, seconds: float) -> float:
        if seconds <= 0.0:
            return 0.0
        return self.bytes_processed / seconds / 1e6

    @property
    def stemmer_mb_per_second(self) -> float:
        return self._rate(self.stemmer_seconds)

    @property
    def ranker_mb_per_second(self) -> float:
        return self._rate(self.ranker_seconds)

    @property
    def detections_per_document(self) -> float:
        return self.detections / self.documents if self.documents else 0.0


class RankerService:
    """End-to-end runtime: quantized stores + trained model.

    Unlike the offline evaluation path, every feature consulted here
    comes from the precomputed hash tables — the quantized
    interestingness store and the packed (TID, score) relevance store —
    exactly as the production framework requires.
    """

    def __init__(
        self,
        pipeline: ShortcutsPipeline,
        interestingness_store: QuantizedInterestingnessStore,
        relevance_store: Optional[PackedRelevanceStore],
        model: RankSVM,
        exclude_groups: Tuple[str, ...] = (),
    ):
        self._pipeline = pipeline
        assembler = FeatureAssembler(
            extractor=interestingness_store,
            relevance_scorer=relevance_store,
            exclude_groups=exclude_groups,
        )
        self._store = interestingness_store
        self._ranker = ConceptRanker(assembler, model)
        self.stats = TimingStats()

    def reset_stats(self) -> None:
        self.stats = TimingStats()

    def process(self, text: str, top: Optional[int] = None) -> List[Detection]:
        """Detect, score, and rank the concepts of *text* (timed)."""
        started = time.perf_counter()
        stemmed_terms(text)  # the Stemmer component's pass over the document
        stem_done = time.perf_counter()

        annotated = self._pipeline.process(text)
        known = [
            d for d in annotated.rankable() if d.phrase in self._store
        ]
        pruned = annotated.__class__(text=annotated.text, detections=known)
        ranked = self._ranker.rank_document(pruned)
        if top is not None:
            ranked = ranked[:top]
        rank_done = time.perf_counter()

        self.stats.stemmer_seconds += stem_done - started
        self.stats.ranker_seconds += rank_done - stem_done
        self.stats.bytes_processed += len(text.encode("utf-8"))
        self.stats.documents += 1
        self.stats.detections += len(ranked)
        return ranked

    def process_batch(
        self, documents: Sequence[str], top: Optional[int] = None
    ) -> List[List[Detection]]:
        """The Section VI throughput experiment over a document batch."""
        return [self.process(text, top=top) for text in documents]
