"""The production runtime service (paper Section VI, Figure 4).

Composes the offline-built hash-table stores into the real-time path:

    document --> TokenizedDocument --> Stemmer --> detection
             --> feature lookups --> Ranker

and instruments the timed components the paper reports (stemmer and
ranker throughput in MB/sec over a document batch), plus per-stage
detection and feature-lookup timings.

The path is single-pass: the document is tokenized exactly once into a
shared :class:`TokenizedDocument`; the stemmer output becomes the
ranker's relevance context, the detectors and the concept-vector scorer
walk the same token stream.  ``process_batch`` optionally fans a batch
out over worker threads, preserving input order and merging the
per-worker timing stats.

Observability: every processed document feeds the service's
:class:`~repro.obs.MetricsRegistry` (per-stage latency histograms,
document/byte/detection counters, detections-per-document, and — in
batch mode — worker chunk queue/run timings), and the service's
:class:`~repro.obs.Tracer` keeps the full nested span tree
(stemmer → detect → rank[features]) for 1-in-N sampled requests.  The
legacy :class:`TimingStats` surface is now a thin view over the same
registry machinery; ranked output is byte-identical with observability
enabled or disabled (``benchmarks/bench_obs.py`` enforces < 3%
throughput overhead).

Ranking-quality observability rides on the same path: ``process(...,
explain=True)`` swaps in the :class:`~repro.obs.explain.ExplainableRanker`
(same floats, same order, plus per-feature score decompositions), an
attached :class:`~repro.obs.quality.QualityMonitor` sees every ranking,
and an attached :class:`~repro.obs.quality.DriftDetector` taps every
assembled feature matrix through ``ConceptRanker.feature_observer``.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro.detection.base import Detection
from repro.detection.pipeline import AnnotatedDocument, ShortcutsPipeline
from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
)
from repro.obs.trace import mark_stage, stage_tracking_enabled
from repro.ranking.model import ConceptRanker, FeatureAssembler
from repro.ranking.ranksvm import RankSVM
from repro.runtime.compressed import CompressedRelevanceStore
from repro.runtime.store import QuantizedInterestingnessStore
from repro.runtime.tid import PackedRelevanceStore
from repro.text.tokenized import TokenizedDocument

RelevanceStore = Union[PackedRelevanceStore, CompressedRelevanceStore]

_STAGES = ("stemmer", "detect", "features", "rank")


class TimingStats:
    """Accumulated component timings over processed documents.

    ``stemmer_seconds`` and ``ranker_seconds`` are the paper's two
    reported components (the ranker covers everything after stemming);
    ``detection_seconds`` and ``feature_seconds`` break the ranker
    component down into its detection and feature-lookup stages.

    The public API is unchanged from the original dataclass (keyword
    construction, attribute reads/writes, ``merge``, the ``*_mb_per_second``
    rates), but the fields now live as counters in a
    :class:`~repro.obs.MetricsRegistry` — by default a private one per
    instance, so snapshots taken before a reset keep their values.
    Pass *registry* to aggregate several views in one place.
    """

    _FLOAT_FIELDS = (
        "stemmer_seconds",
        "ranker_seconds",
        "detection_seconds",
        "feature_seconds",
    )
    _INT_FIELDS = ("bytes_processed", "documents", "detections")
    FIELDS = _FLOAT_FIELDS + _INT_FIELDS

    __slots__ = ("_counters",)

    def __init__(
        self,
        stemmer_seconds: float = 0.0,
        ranker_seconds: float = 0.0,
        detection_seconds: float = 0.0,
        feature_seconds: float = 0.0,
        bytes_processed: int = 0,
        documents: int = 0,
        detections: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ):
        if registry is None or not registry.enabled:
            registry = MetricsRegistry()
        object.__setattr__(
            self,
            "_counters",
            {
                name: registry.counter(
                    f"timing_{name}_total",
                    help=f"legacy TimingStats field {name}",
                )
                for name in self.FIELDS
            },
        )
        initial = {
            "stemmer_seconds": stemmer_seconds,
            "ranker_seconds": ranker_seconds,
            "detection_seconds": detection_seconds,
            "feature_seconds": feature_seconds,
            "bytes_processed": bytes_processed,
            "documents": documents,
            "detections": detections,
        }
        for name, value in initial.items():
            if value:
                self._counters[name].inc(value)

    def _get(self, name: str) -> float:
        return self._counters[name].value

    def _set(self, name: str, value: float) -> None:
        self._counters[name]._set_total(value)

    def _rate(self, seconds: float) -> float:
        """MB/s over the accumulated byte count; ``nan`` before any work.

        Guards every division edge: zero/negative/non-finite seconds
        and a zero byte count all report ``nan`` ("no measurement")
        rather than raising or propagating inf — consistent with
        :meth:`~repro.obs.registry.Histogram.quantile` on an empty
        histogram, and unlike 0.0 never mistakable for a measured
        zero-throughput run.
        """
        bytes_processed = self.bytes_processed
        if (
            seconds <= 0.0
            or not math.isfinite(seconds)
            or bytes_processed <= 0
        ):
            return float("nan")
        return bytes_processed / seconds / 1e6

    @property
    def stemmer_mb_per_second(self) -> float:
        return self._rate(self.stemmer_seconds)

    @property
    def ranker_mb_per_second(self) -> float:
        return self._rate(self.ranker_seconds)

    @property
    def detection_mb_per_second(self) -> float:
        return self._rate(self.detection_seconds)

    @property
    def feature_mb_per_second(self) -> float:
        return self._rate(self.feature_seconds)

    @property
    def detections_per_document(self) -> float:
        documents = self.documents
        return self.detections / documents if documents else float("nan")

    def record_document(
        self,
        stem_seconds: float,
        detection_seconds: float,
        ranker_seconds: float,
        feature_seconds: float,
        document_bytes: int,
        detections: int,
    ) -> None:
        """Accumulate one document's timings via shard-local increments.

        Attribute ``+=`` on this class costs a locked merge-read plus a
        locked zero-and-set across every shard per field; the hot path
        calls this instead — seven lock-free ``Counter.inc`` bumps.
        """
        counters = self._counters
        counters["stemmer_seconds"].inc(stem_seconds)
        counters["detection_seconds"].inc(detection_seconds)
        counters["ranker_seconds"].inc(ranker_seconds)
        counters["feature_seconds"].inc(feature_seconds)
        counters["bytes_processed"].inc(document_bytes)
        counters["documents"].inc()
        if detections:
            counters["detections"].inc(detections)

    def merge(self, other: "TimingStats") -> "TimingStats":
        """Accumulate *other* into this stats object (returns self).

        Accepts any object exposing the seven field attributes; absent
        or falsy fields (a zero-byte stats object) merge as 0.0.
        """
        for name in self.FIELDS:
            value = getattr(other, name, 0) or 0
            if value:
                self._counters[name].inc(float(value))
        return self

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}

    def __eq__(self, other) -> bool:
        if not isinstance(other, TimingStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in self.FIELDS
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={getattr(self, name)!r}" for name in self.FIELDS)
        return f"TimingStats({body})"


def _timing_field(name: str, is_int: bool) -> property:
    if is_int:

        def fget(self):
            return int(self._get(name))

    else:

        def fget(self):
            return self._get(name)

    def fset(self, value):
        self._set(name, float(value))

    return property(fget, fset)


for _name in TimingStats._FLOAT_FIELDS:
    setattr(TimingStats, _name, _timing_field(_name, is_int=False))
for _name in TimingStats._INT_FIELDS:
    setattr(TimingStats, _name, _timing_field(_name, is_int=True))
del _name


class RankerService:
    """End-to-end runtime: quantized stores + trained model.

    Unlike the offline evaluation path, every feature consulted here
    comes from the precomputed columnar stores — the quantized
    interestingness matrix and the packed (or Golomb-compressed)
    relevance arena — exactly as the production framework requires.
    A document's candidates are scored with one batched ``score_many``
    arena pass instead of per-phrase dict lookups.

    *registry*/*tracer* default to the process-wide pair from
    :mod:`repro.obs`; pass explicit ones to isolate a service's
    telemetry (tests do).  Registry counters are cumulative for the
    life of the service — ``reset_stats`` only resets the legacy
    :class:`TimingStats` view, matching its original snapshot
    semantics.
    """

    def __init__(
        self,
        pipeline: ShortcutsPipeline,
        interestingness_store: QuantizedInterestingnessStore,
        relevance_store: Optional[RelevanceStore],
        model: RankSVM,
        exclude_groups: Tuple[str, ...] = (),
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        quality=None,
        drift=None,
    ):
        self._pipeline = pipeline
        assembler = FeatureAssembler(
            extractor=interestingness_store,
            relevance_scorer=relevance_store,
            exclude_groups=exclude_groups,
        )
        self._store = interestingness_store
        self._assembler = assembler
        self._model = model
        self._ranker = ConceptRanker(assembler, model)
        self._explainer = None  # built lazily on the first explain=True
        self.quality = quality
        self.drift = drift
        if drift is not None:
            drift.bind(assembler.feature_names())
            self._ranker.feature_observer = drift.observe
        self._registry = registry if registry is not None else get_registry()
        self._tracer = tracer if tracer is not None else get_tracer()
        reg = self._registry
        self._m_stage = {
            stage: reg.histogram(
                "rank_stage_seconds",
                help="per-document stage latency",
                stage=stage,
            )
            for stage in _STAGES
        }
        self._m_stage_totals = {
            stage: reg.counter(
                "rank_stage_seconds_total",
                help="cumulative seconds by stage",
                stage=stage,
            )
            for stage in _STAGES
        }
        self._m_documents = reg.counter(
            "rank_documents_total", help="documents processed"
        )
        self._m_bytes = reg.counter(
            "rank_bytes_total", help="utf-8 bytes processed"
        )
        self._m_detections = reg.counter(
            "rank_detections_total", help="ranked detections emitted"
        )
        self._m_detections_per_doc = reg.histogram(
            "rank_detections_per_document",
            help="ranked detections per document",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_chunk_queue = reg.histogram(
            "rank_batch_chunk_queue_seconds",
            help="batch chunk time from submit to worker start",
        )
        self._m_chunk_run = reg.histogram(
            "rank_batch_chunk_run_seconds",
            help="batch chunk time on the worker",
        )
        self._m_chunks = reg.counter(
            "rank_batch_chunks_total", help="batch chunks dispatched"
        )
        self._m_batch_size = reg.histogram(
            "rank_batch_documents",
            help="documents per process_batch call",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_workers = reg.gauge(
            "rank_batch_workers", help="workers used by the last batch"
        )
        self.stats = TimingStats()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def tracer(self) -> Tracer:
        return self._tracer

    def reset_stats(self) -> None:
        """Fresh legacy stats view (registry counters stay cumulative)."""
        self.stats = TimingStats()

    def observe_resident_bytes(self) -> dict:
        """Measure the serving stores' payload bytes into the registry.

        Sets ``resident_bytes{component=...}`` gauges for the quantized
        interestingness matrix, the relevance arena (including a
        compressed store's decode cache), and the feature arena, and
        returns the measured map — the ``/debug/heap`` surface calls
        this per scrape, so the gauges track cache growth live.
        """
        from repro.obs.profile import record_resident_bytes

        components = {"interestingness_store": self._store}
        relevance = self._assembler.relevance_scorer
        if relevance is not None:
            components["relevance_store"] = relevance
        arena = getattr(self._assembler, "_numeric_arena", None)
        if arena is not None:
            components["feature_arena"] = arena
        return record_resident_bytes(components, registry=self._registry)

    def _explainable_ranker(self):
        """The explain-path twin of the ranker (built on first use)."""
        if self._explainer is None:
            from repro.obs.explain import ExplainableRanker

            explainer = ExplainableRanker(self._assembler, self._model)
            explainer.feature_observer = self._ranker.feature_observer
            self._explainer = explainer
        return self._explainer

    def process(
        self, text: str, top: Optional[int] = None, explain: bool = False
    ):
        """Detect, score, and rank the concepts of *text* (timed).

        Returns the ranked detections; with ``explain=True`` returns
        ``(ranked, explanations)`` instead, where ``explanations[i]``
        decomposes ``ranked[i]``'s score per feature (linear kernel
        only).  The ranked order is identical either way — the explain
        path replays the exact same float operations.
        """
        return self._process(text, top, self.stats, explain=explain)

    def _process(
        self,
        text: str,
        top: Optional[int],
        stats: TimingStats,
        explain: bool = False,
    ):
        """One document through the single-pass path, timed into *stats*."""
        trace = self._tracer.start("process")
        # Publish the stage the thread is in for the sampling profiler
        # (repro.obs.profile) — one module-global bool check per stage
        # boundary when nothing is profiling, so the hot path stays hot.
        marking = stage_tracking_enabled()
        if marking:
            mark_stage("stemmer")
        started = time.perf_counter()
        document = TokenizedDocument(text)
        # The Stemmer component's pass: tokenize once, stem once.  The
        # result stays cached on `document` and becomes the relevance
        # context of the ranking stage below — timed work is real work.
        # Routed through the pipeline so a compiled detection kernel's
        # vocab->stem table serves the pass (Porter only for OOV words);
        # without a kernel this is exactly `document.stemmed_terms`.
        self._pipeline.stem_document(document)
        stem_done = time.perf_counter()

        if marking:
            mark_stage("detect")
        annotated = self._pipeline.process_document(document)
        detect_done = time.perf_counter()
        if marking:
            mark_stage("rank")

        known = [
            d for d in annotated.rankable() if d.phrase in self._store
        ]
        pruned = AnnotatedDocument(
            text=annotated.text, detections=known, tokens=document
        )
        explanations = None
        if explain:
            ranked, explanations, feature_seconds = (
                self._explainable_ranker().explain_document_timed(pruned)
            )
        else:
            ranked, feature_seconds = self._ranker.rank_document_timed(pruned)
        if self.quality is not None and ranked:
            self.quality.observe_ranking(
                [d.phrase for d in ranked], [d.score for d in ranked]
            )
        if top is not None:
            ranked = ranked[:top]
            if explanations is not None:
                explanations = explanations[:top]
        rank_done = time.perf_counter()
        if marking:
            mark_stage(None)

        stem_seconds = stem_done - started
        detect_seconds = detect_done - stem_done
        rank_seconds = rank_done - detect_done
        document_bytes = len(text.encode("utf-8"))

        stats.record_document(
            stem_seconds,
            detect_seconds,
            rank_done - stem_done,
            feature_seconds,
            document_bytes,
            len(ranked),
        )

        self._m_stage["stemmer"].observe(stem_seconds)
        self._m_stage["detect"].observe(detect_seconds)
        self._m_stage["features"].observe(feature_seconds)
        self._m_stage["rank"].observe(rank_seconds)
        self._m_stage_totals["stemmer"].inc(stem_seconds)
        self._m_stage_totals["detect"].inc(detect_seconds)
        self._m_stage_totals["features"].inc(feature_seconds)
        self._m_stage_totals["rank"].inc(rank_seconds)
        self._m_documents.inc()
        self._m_bytes.inc(document_bytes)
        self._m_detections.inc(len(ranked))
        self._m_detections_per_doc.observe(len(ranked))

        if trace.sampled:
            # Reuse the clock readings already taken above — the trace
            # costs no extra perf_counter calls on the hot path.
            trace.record("stemmer", started, stem_done)
            trace.record("detect", stem_done, detect_done)
            rank_span = trace.record("rank", detect_done, rank_done)
            feature_span = trace.record_duration(
                "features", detect_done, feature_seconds
            )
            rank_span.children.append(feature_span)
            trace.spans.remove(feature_span)
            trace.meta.update(
                {
                    "bytes": document_bytes,
                    "detections": len(ranked),
                    "top": top,
                }
            )
            if explanations is not None:
                trace.meta["explanations"] = [
                    e.to_dict() for e in explanations
                ]
        self._tracer.finish(trace)
        if explain:
            return ranked, explanations if explanations is not None else []
        return ranked

    def process_batch(
        self,
        documents: Sequence[str],
        top: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> List[List[Detection]]:
        """The Section VI throughput experiment over a document batch.

        With ``workers`` > 1 the batch is split into contiguous chunks
        processed on a thread pool; results come back in input order and
        every worker's :class:`TimingStats` is merged into
        ``self.stats``, so the aggregate counters match sequential mode.
        Chunk queue time (submit → worker pickup) and run time feed the
        batch histograms.
        """
        self._m_batch_size.observe(len(documents))
        if workers is None or workers <= 1 or len(documents) <= 1:
            self._m_workers.set(1)
            return [self.process(text, top=top) for text in documents]
        worker_count = min(workers, len(documents))
        self._m_workers.set(worker_count)
        chunk_size = -(-len(documents) // worker_count)  # ceil division
        chunks = [
            documents[offset : offset + chunk_size]
            for offset in range(0, len(documents), chunk_size)
        ]
        submitted = time.perf_counter()

        def run_chunk(chunk: Sequence[str]) -> Tuple[List[List[Detection]], TimingStats]:
            picked_up = time.perf_counter()
            stats = TimingStats()
            results = [self._process(text, top, stats) for text in chunk]
            self._m_chunk_queue.observe(picked_up - submitted)
            self._m_chunk_run.observe(time.perf_counter() - picked_up)
            self._m_chunks.inc()
            return results, stats

        ranked: List[List[Detection]] = []
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            for results, stats in pool.map(run_chunk, chunks):
                ranked.extend(results)
                self.stats.merge(stats)
        return ranked
