"""The production runtime service (paper Section VI, Figure 4).

Composes the offline-built hash-table stores into the real-time path:

    document --> TokenizedDocument --> Stemmer --> detection
             --> feature lookups --> Ranker

and instruments the timed components the paper reports (stemmer and
ranker throughput in MB/sec over a document batch), plus per-stage
detection and feature-lookup timings.

The path is single-pass: the document is tokenized exactly once into a
shared :class:`TokenizedDocument`; the stemmer output becomes the
ranker's relevance context, the detectors and the concept-vector scorer
walk the same token stream.  ``process_batch`` optionally fans a batch
out over worker threads, preserving input order and merging the
per-worker timing stats.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from typing import List, Optional, Sequence, Tuple, Union

from repro.detection.base import Detection
from repro.detection.pipeline import AnnotatedDocument, ShortcutsPipeline
from repro.ranking.model import ConceptRanker, FeatureAssembler
from repro.ranking.ranksvm import RankSVM
from repro.runtime.compressed import CompressedRelevanceStore
from repro.runtime.store import QuantizedInterestingnessStore
from repro.runtime.tid import PackedRelevanceStore
from repro.text.tokenized import TokenizedDocument

RelevanceStore = Union[PackedRelevanceStore, CompressedRelevanceStore]


@dataclass
class TimingStats:
    """Accumulated component timings over processed documents.

    ``stemmer_seconds`` and ``ranker_seconds`` are the paper's two
    reported components (the ranker covers everything after stemming);
    ``detection_seconds`` and ``feature_seconds`` break the ranker
    component down into its detection and feature-lookup stages.
    """

    stemmer_seconds: float = 0.0
    ranker_seconds: float = 0.0
    detection_seconds: float = 0.0
    feature_seconds: float = 0.0
    bytes_processed: int = 0
    documents: int = 0
    detections: int = 0

    def _rate(self, seconds: float) -> float:
        if seconds <= 0.0:
            return 0.0
        return self.bytes_processed / seconds / 1e6

    @property
    def stemmer_mb_per_second(self) -> float:
        return self._rate(self.stemmer_seconds)

    @property
    def ranker_mb_per_second(self) -> float:
        return self._rate(self.ranker_seconds)

    @property
    def detection_mb_per_second(self) -> float:
        return self._rate(self.detection_seconds)

    @property
    def feature_mb_per_second(self) -> float:
        return self._rate(self.feature_seconds)

    @property
    def detections_per_document(self) -> float:
        return self.detections / self.documents if self.documents else 0.0

    def merge(self, other: "TimingStats") -> "TimingStats":
        """Accumulate *other* into this stats object (returns self)."""
        for spec in fields(self):
            setattr(
                self, spec.name, getattr(self, spec.name) + getattr(other, spec.name)
            )
        return self


class RankerService:
    """End-to-end runtime: quantized stores + trained model.

    Unlike the offline evaluation path, every feature consulted here
    comes from the precomputed columnar stores — the quantized
    interestingness matrix and the packed (or Golomb-compressed)
    relevance arena — exactly as the production framework requires.
    A document's candidates are scored with one batched ``score_many``
    arena pass instead of per-phrase dict lookups.
    """

    def __init__(
        self,
        pipeline: ShortcutsPipeline,
        interestingness_store: QuantizedInterestingnessStore,
        relevance_store: Optional[RelevanceStore],
        model: RankSVM,
        exclude_groups: Tuple[str, ...] = (),
    ):
        self._pipeline = pipeline
        assembler = FeatureAssembler(
            extractor=interestingness_store,
            relevance_scorer=relevance_store,
            exclude_groups=exclude_groups,
        )
        self._store = interestingness_store
        self._ranker = ConceptRanker(assembler, model)
        self.stats = TimingStats()

    def reset_stats(self) -> None:
        self.stats = TimingStats()

    def process(self, text: str, top: Optional[int] = None) -> List[Detection]:
        """Detect, score, and rank the concepts of *text* (timed)."""
        return self._process(text, top, self.stats)

    def _process(
        self, text: str, top: Optional[int], stats: TimingStats
    ) -> List[Detection]:
        """One document through the single-pass path, timed into *stats*."""
        started = time.perf_counter()
        document = TokenizedDocument(text)
        # The Stemmer component's pass: tokenize once, stem once.  The
        # result stays cached on `document` and becomes the relevance
        # context of the ranking stage below — timed work is real work.
        document.stemmed_terms
        stem_done = time.perf_counter()

        annotated = self._pipeline.process_document(document)
        detect_done = time.perf_counter()

        known = [
            d for d in annotated.rankable() if d.phrase in self._store
        ]
        pruned = AnnotatedDocument(
            text=annotated.text, detections=known, tokens=document
        )
        ranked, feature_seconds = self._ranker.rank_document_timed(pruned)
        if top is not None:
            ranked = ranked[:top]
        rank_done = time.perf_counter()

        stats.stemmer_seconds += stem_done - started
        stats.ranker_seconds += rank_done - stem_done
        stats.detection_seconds += detect_done - stem_done
        stats.feature_seconds += feature_seconds
        stats.bytes_processed += len(text.encode("utf-8"))
        stats.documents += 1
        stats.detections += len(ranked)
        return ranked

    def process_batch(
        self,
        documents: Sequence[str],
        top: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> List[List[Detection]]:
        """The Section VI throughput experiment over a document batch.

        With ``workers`` > 1 the batch is split into contiguous chunks
        processed on a thread pool; results come back in input order and
        every worker's :class:`TimingStats` is merged into
        ``self.stats``, so the aggregate counters match sequential mode.
        """
        if workers is None or workers <= 1 or len(documents) <= 1:
            return [self.process(text, top=top) for text in documents]
        worker_count = min(workers, len(documents))
        chunk_size = -(-len(documents) // worker_count)  # ceil division
        chunks = [
            documents[offset : offset + chunk_size]
            for offset in range(0, len(documents), chunk_size)
        ]

        def run_chunk(chunk: Sequence[str]) -> Tuple[List[List[Detection]], TimingStats]:
            stats = TimingStats()
            results = [self._process(text, top, stats) for text in chunk]
            return results, stats

        ranked: List[List[Detection]] = []
        with ThreadPoolExecutor(max_workers=worker_count) as pool:
            for results, stats in pool.map(run_chunk, chunks):
                ranked.extend(results)
                self.stats.merge(stats)
        return ranked
