"""Golomb-compressed relevance store (paper Section VI, realized).

The paper suggests its 400 MB/1M-concepts relevance store "can be even
further reduced through ... integer compression techniques, such as
Golomb Coding".  :class:`CompressedRelevanceStore` implements that
variant as a working runtime store, not just an accounting exercise:
each concept's sorted TID list is delta+Golomb coded and its 10-bit
scores are bit-packed; lookups decode block-wise (byte/word-chunked
Golomb, one vectorized numpy pass for the score stream) and an LRU
cache keeps hot concepts decoded so repeated lookups skip
decompression entirely.

The trade is the classic one: ~half the memory for slower cold
scoring.  ``PackedRelevanceStore`` remains the hot-path choice; this
store suits memory-constrained tiers (the paper's motivating 1M+
concept scale).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.features.quantize import quantize
from repro.features.relevance import RelevanceModel, stemmed_terms
from repro.obs import DEFAULT_SIZE_BUCKETS, MetricsRegistry, get_registry
from repro.text.tokenized import DocumentLike
from repro.runtime.arena import as_tid_context, sorted_membership
from repro.runtime.golomb import (
    BitWriter,
    golomb_decode_array,
    golomb_encode,
    unpack_fixed_width,
)
from repro.runtime.tid import (
    MAX_SCORE_CODE,
    SCORE_BITS,
    GlobalTidTable,
    PackedRelevanceStore,
    model_score_peak,
)

DEFAULT_DECODE_CACHE = 128


@dataclass(frozen=True)
class _CompressedEntry:
    """One concept's compressed keyword data."""

    count: int
    golomb_m: int
    tid_payload: bytes
    score_payload: bytes


def _pack_scores(codes) -> bytes:
    writer = BitWriter()
    for code in codes:
        writer.write_bits(int(code), SCORE_BITS)
    return writer.getvalue()


def _unpack_scores(payload: bytes, count: int):
    return unpack_fixed_width(payload, count, SCORE_BITS).tolist()


class CompressedRelevanceStore:
    """Relevance store with Golomb-coded TIDs and bit-packed scores.

    Exposes the same scoring protocol as
    :class:`~repro.runtime.tid.PackedRelevanceStore` (``context_stems``
    / ``score`` / ``score_many`` / ``score_text``), so it is a drop-in
    for the runtime ranker.  *cache_size* bounds the LRU of decoded
    (TID array, dequantized score array) pairs; 0 disables caching.
    """

    def __init__(
        self,
        tid_table: GlobalTidTable,
        score_max: float,
        cache_size: int = DEFAULT_DECODE_CACHE,
    ):
        self._tids = tid_table
        self.score_max = float(score_max)
        self._entries: Dict[str, _CompressedEntry] = {}
        self._cache: "OrderedDict[str, Tuple[np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._cache_size = int(cache_size)
        # Per-store exact counters (a private registry keeps cache_info
        # and the cache_hits/cache_misses attributes store-local, as the
        # tests assert) mirrored into the process-wide aggregates.
        local = MetricsRegistry()
        self._m_hits = local.counter("decode_cache_hits")
        self._m_misses = local.counter("decode_cache_misses")
        self._m_evictions = local.counter("decode_cache_evictions")
        registry = get_registry()
        self._g_hits = registry.counter(
            "relevance_decode_cache_hits_total",
            help="decode-cache hits across compressed stores",
        )
        self._g_misses = registry.counter(
            "relevance_decode_cache_misses_total",
            help="decode-cache misses (cold decodes) across compressed stores",
        )
        self._g_evictions = registry.counter(
            "relevance_decode_cache_evictions_total",
            help="decode-cache LRU evictions across compressed stores",
        )
        self._g_batch = registry.histogram(
            "relevance_score_many_phrases",
            help="phrases per compressed score_many call",
            buckets=DEFAULT_SIZE_BUCKETS,
            store="compressed",
        )

    @property
    def cache_hits(self) -> int:
        return int(self._m_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._m_misses.value)

    @property
    def cache_evictions(self) -> int:
        return int(self._m_evictions.value)

    @property
    def tid_table(self) -> GlobalTidTable:
        return self._tids

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._entries

    def _store_entry(self, key: str, tids, codes) -> None:
        payload, m = golomb_encode(tids)
        self._entries[key] = _CompressedEntry(
            count=len(tids),
            golomb_m=m,
            tid_payload=payload,
            score_payload=_pack_scores(codes),
        )
        self._cache.pop(key, None)

    def add(self, phrase: str, relevant_terms) -> None:
        """Compress and store one concept's relevant terms.

        Terms are sorted by TID; scores are stored in the same order so
        the two streams stay aligned.
        """
        pairs = sorted(
            (self._tids.assign(term), quantize(score, self.score_max, SCORE_BITS))
            for term, score in relevant_terms
        )
        self._store_entry(
            phrase.lower(),
            [tid for tid, __ in pairs],
            [code for __, code in pairs],
        )

    # -- decode cache ------------------------------------------------------

    def _decode(self, key: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """(sorted TID array, dequantized score array) for one concept."""
        cached = self._cache.get(key)
        if cached is not None:
            self._m_hits.inc()
            self._g_hits.inc()
            self._cache.move_to_end(key)
            return cached
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._m_misses.inc()
        self._g_misses.inc()
        tids = golomb_decode_array(entry.tid_payload, entry.count, entry.golomb_m)
        codes = unpack_fixed_width(entry.score_payload, entry.count, SCORE_BITS)
        values = codes.astype(np.float64) / MAX_SCORE_CODE * self.score_max
        decoded = (tids, values)
        if self._cache_size > 0:
            self._cache[key] = decoded
            if len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self._m_evictions.inc()
                self._g_evictions.inc()
        return decoded

    def cache_info(self) -> Dict[str, int]:
        """Decode-cache counters.

        Deprecated shim: the counts now live in observability counters
        (``relevance_decode_cache_*_total`` in the process registry, and
        the per-store ``cache_hits``/``cache_misses``/``cache_evictions``
        properties this dict delegates to).  Kept for older benchmarks
        and dashboards; prefer ``repro.obs.get_registry().snapshot()``.
        """
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "evictions": self.cache_evictions,
            "size": len(self._cache),
            "capacity": self._cache_size,
        }

    # -- RelevanceScorer protocol ------------------------------------------

    def context_stems(self, text: DocumentLike) -> np.ndarray:
        # Kernel-stamped documents map token ids straight to TIDs.
        kernel = getattr(text, "_kernel", None)
        if kernel is not None:
            return kernel.tid_context(text, self._tids)
        return self._tids.tid_context(stemmed_terms(text))

    def score(self, phrase: str, context) -> float:
        ctx = as_tid_context(context)
        if ctx is None:
            return 0.0
        decoded = self._decode(phrase.lower())
        if decoded is None:
            return 0.0
        tids, values = decoded
        if not tids.size:
            return 0.0
        mask = sorted_membership(ctx, tids)
        if not mask.any():
            return 0.0
        # Left-to-right scalar accumulation: bit-identical to the seed loop.
        total = 0.0
        for value in values[mask].tolist():
            total += value
        return total

    def score_many(self, phrases: Sequence[str], context) -> np.ndarray:
        """Per-phrase scores for one shared context (cache-amortized)."""
        self._g_batch.observe(len(phrases))
        out = np.zeros(len(phrases))
        ctx = as_tid_context(context)
        if ctx is None:
            return out
        for index, phrase in enumerate(phrases):
            out[index] = self.score(phrase, ctx)
        return out

    def score_text(self, phrase: str, text: str) -> float:
        return self.score(phrase, self.context_stems(text))

    # -- storage accounting ---------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes of compressed keyword storage."""
        return sum(
            len(entry.tid_payload) + len(entry.score_payload)
            for entry in self._entries.values()
        )

    @classmethod
    def build(
        cls,
        model: RelevanceModel,
        tid_table: Optional[GlobalTidTable] = None,
        score_max: Optional[float] = None,
        cache_size: int = DEFAULT_DECODE_CACHE,
    ) -> "CompressedRelevanceStore":
        """Build from an offline relevance model.

        Pass *score_max* to skip the full-model peak scan when the
        quantizer scale is already known (e.g. from a packed store built
        over the same model).
        """
        if score_max is None:
            score_max = model_score_peak(model) or 1.0
        if tid_table is None:
            tid_table = GlobalTidTable()
        store = cls(tid_table, score_max=score_max, cache_size=cache_size)
        for phrase in model.phrases():
            store.add(phrase, model.relevant_terms(phrase))
        return store

    @classmethod
    def from_packed(
        cls,
        packed: PackedRelevanceStore,
        cache_size: int = DEFAULT_DECODE_CACHE,
    ) -> "CompressedRelevanceStore":
        """Convert a packed store (shares the TID table and score scale).

        Reuses ``packed.score_max`` — no model re-scan — and reads the
        TID/score columns straight out of the packed store's arena.
        """
        store = cls(
            packed.tid_table, score_max=packed.score_max, cache_size=cache_size
        )
        for phrase, segment in packed.arena().segments():
            store._store_entry(
                phrase,
                (segment >> SCORE_BITS).tolist(),
                (segment & MAX_SCORE_CODE).tolist(),
            )
        return store
