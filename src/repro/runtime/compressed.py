"""Golomb-compressed relevance store (paper Section VI, realized).

The paper suggests its 400 MB/1M-concepts relevance store "can be even
further reduced through ... integer compression techniques, such as
Golomb Coding".  :class:`CompressedRelevanceStore` implements that
variant as a working runtime store, not just an accounting exercise:
each concept's sorted TID list is delta+Golomb coded and its 10-bit
scores are bit-packed; lookups decode on the fly.

The trade is the classic one: ~half the memory for slower scoring.
``PackedRelevanceStore`` remains the hot-path choice; this store suits
memory-constrained tiers (the paper's motivating 1M+ concept scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.features.quantize import dequantize, quantize
from repro.features.relevance import RelevanceModel, stemmed_terms
from repro.text.tokenized import DocumentLike
from repro.runtime.golomb import BitReader, BitWriter, golomb_decode, golomb_encode
from repro.runtime.tid import SCORE_BITS, GlobalTidTable, PackedRelevanceStore


@dataclass(frozen=True)
class _CompressedEntry:
    """One concept's compressed keyword data."""

    count: int
    golomb_m: int
    tid_payload: bytes
    score_payload: bytes


def _pack_scores(codes) -> bytes:
    writer = BitWriter()
    for code in codes:
        writer.write_bits(int(code), SCORE_BITS)
    return writer.getvalue()


def _unpack_scores(payload: bytes, count: int):
    reader = BitReader(payload)
    return [reader.read_bits(SCORE_BITS) for __ in range(count)]


class CompressedRelevanceStore:
    """Relevance store with Golomb-coded TIDs and bit-packed scores.

    Exposes the same scoring protocol as
    :class:`~repro.runtime.tid.PackedRelevanceStore` (``context_stems``
    / ``score`` / ``score_text``), so it is a drop-in for the runtime
    ranker.
    """

    def __init__(self, tid_table: GlobalTidTable, score_max: float):
        self._tids = tid_table
        self.score_max = float(score_max)
        self._entries: Dict[str, _CompressedEntry] = {}

    @property
    def tid_table(self) -> GlobalTidTable:
        return self._tids

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._entries

    def add(self, phrase: str, relevant_terms) -> None:
        """Compress and store one concept's relevant terms.

        Terms are sorted by TID; scores are stored in the same order so
        the two streams stay aligned.
        """
        pairs = sorted(
            (self._tids.assign(term), quantize(score, self.score_max, SCORE_BITS))
            for term, score in relevant_terms
        )
        tids = [tid for tid, __ in pairs]
        codes = [code for __, code in pairs]
        payload, m = golomb_encode(tids)
        self._entries[phrase.lower()] = _CompressedEntry(
            count=len(pairs),
            golomb_m=m,
            tid_payload=payload,
            score_payload=_pack_scores(codes),
        )

    # -- RelevanceScorer protocol ------------------------------------------

    def context_stems(self, text: DocumentLike) -> Set[int]:
        return self._tids.tids_of(stemmed_terms(text))

    def score(self, phrase: str, context: Set[int]) -> float:
        entry = self._entries.get(phrase.lower())
        if entry is None or not context:
            return 0.0
        tids = golomb_decode(entry.tid_payload, entry.count, entry.golomb_m)
        codes = _unpack_scores(entry.score_payload, entry.count)
        total = 0.0
        for tid, code in zip(tids, codes):
            if tid in context:
                total += dequantize(code, self.score_max, SCORE_BITS)
        return total

    def score_text(self, phrase: str, text: str) -> float:
        return self.score(phrase, self.context_stems(text))

    # -- storage accounting ---------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes of compressed keyword storage."""
        return sum(
            len(entry.tid_payload) + len(entry.score_payload)
            for entry in self._entries.values()
        )

    @classmethod
    def build(
        cls, model: RelevanceModel, tid_table: Optional[GlobalTidTable] = None
    ) -> "CompressedRelevanceStore":
        """Build from an offline relevance model."""
        peak = 0.0
        for phrase in model.phrases():
            for __, score in model.relevant_terms(phrase):
                peak = max(peak, score)
        if tid_table is None:
            tid_table = GlobalTidTable()
        store = cls(tid_table, score_max=peak or 1.0)
        for phrase in model.phrases():
            store.add(phrase, model.relevant_terms(phrase))
        return store

    @classmethod
    def from_packed(cls, packed: PackedRelevanceStore) -> "CompressedRelevanceStore":
        """Convert a packed store (shares the TID table)."""
        from repro.runtime.tid import unpack_pair

        store = cls(packed.tid_table, score_max=packed.score_max)
        for phrase in list(packed._packed):
            pairs = sorted(
                unpack_pair(int(value)) for value in packed.packed(phrase)
            )
            tids = [tid for tid, __ in pairs]
            codes = [code for __, code in pairs]
            payload, m = golomb_encode(tids)
            store._entries[phrase] = _CompressedEntry(
                count=len(pairs),
                golomb_m=m,
                tid_payload=payload,
                score_payload=_pack_scores(codes),
            )
        return store
