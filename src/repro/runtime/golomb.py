"""Golomb coding for compressed term-id lists (paper Section VI).

The paper notes the 400 MB relevance store "can be even further reduced
through ... integer compression techniques, such as Golomb Coding".
Sorted TID lists are delta-encoded and each gap is Golomb-coded with
parameter M: quotient in unary, remainder in truncated binary.

The bit streams are MSB-first and byte-compatible with the original
bit-at-a-time implementation, but both ends now work block-wise: the
writer accumulates whole fields into an integer and flushes bytes in
one shot, the reader refills a multi-byte window and consumes unary
runs with integer bit tricks instead of a per-bit loop, and fixed-width
fields (the 10-bit score stream) decode in a single vectorized numpy
pass via :func:`unpack_fixed_width`.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np


class BitWriter:
    """Append-only bit buffer (byte-chunked, MSB-first)."""

    def __init__(self):
        self._bytes = bytearray()
        self._acc = 0  # pending bits, right-aligned
        self._pending = 0
        self._total = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append *width* bits of *value*, most significant first."""
        if width <= 0:
            return
        self._acc = (self._acc << width) | (value & ((1 << width) - 1))
        self._pending += width
        self._total += width
        if self._pending >= 8:
            keep = self._pending & 7
            emit = self._pending - keep
            self._bytes += (self._acc >> keep).to_bytes(emit >> 3, "big")
            self._acc &= (1 << keep) - 1
            self._pending = keep

    def write_bit(self, bit: int) -> None:
        self.write_bits(1 if bit else 0, 1)

    def write_unary(self, value: int) -> None:
        """*value* one-bits followed by a terminating zero."""
        full, rest = divmod(value, 32)
        for __ in range(full):
            self.write_bits(0xFFFFFFFF, 32)
        self.write_bits(((1 << rest) - 1) << 1, rest + 1)

    def getvalue(self) -> bytes:
        if not self._pending:
            return bytes(self._bytes)
        tail = (self._acc << (8 - self._pending)) & 0xFF
        return bytes(self._bytes) + bytes([tail])

    @property
    def bit_length(self) -> int:
        return self._total


class BitReader:
    """Sequential bit reader over bytes (word-chunked refills)."""

    def __init__(self, data):
        self._data = data
        self._length = len(data)
        self._position = 0  # next byte to pull into the window
        self._acc = 0
        self._avail = 0

    def _refill(self, need: int) -> None:
        while self._avail < need:
            if self._position >= self._length:
                raise EOFError("bit stream exhausted")
            step = min(8, self._length - self._position)
            chunk = self._data[self._position : self._position + step]
            self._acc = (self._acc << (8 * step)) | int.from_bytes(chunk, "big")
            self._avail += 8 * step
            self._position += step

    def read_bits(self, width: int) -> int:
        if width <= 0:
            return 0
        self._refill(width)
        self._avail -= width
        value = self._acc >> self._avail
        self._acc &= (1 << self._avail) - 1
        return value

    def read_bit(self) -> int:
        return self.read_bits(1)

    def read_unary(self) -> int:
        count = 0
        while True:
            if self._avail == 0:
                self._refill(1)
            all_ones = (1 << self._avail) - 1
            if self._acc == all_ones:
                # the whole window is ones: consume it and keep scanning
                count += self._avail
                self._acc = 0
                self._avail = 0
                continue
            # highest zero bit of the window is the unary terminator
            top_zero = (self._acc ^ all_ones).bit_length() - 1
            count += self._avail - 1 - top_zero
            self._avail = top_zero
            self._acc &= (1 << top_zero) - 1
            return count


def unpack_fixed_width(payload, count: int, width: int) -> np.ndarray:
    """Decode *count* MSB-first *width*-bit integers in one numpy pass."""
    if count <= 0:
        return np.zeros(0, dtype=np.int64)
    bits = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=count * width
    )
    weights = (1 << np.arange(width - 1, -1, -1)).astype(np.int64)
    return bits.reshape(count, width) @ weights


def _golomb_write(writer: BitWriter, value: int, m: int) -> None:
    quotient, remainder = divmod(value, m)
    writer.write_unary(quotient)
    # truncated binary for the remainder
    width = max(1, math.ceil(math.log2(m))) if m > 1 else 0
    if m == 1:
        return
    cutoff = (1 << width) - m
    if remainder < cutoff:
        writer.write_bits(remainder, width - 1)
    else:
        writer.write_bits(remainder + cutoff, width)


def _golomb_read(reader: BitReader, m: int) -> int:
    quotient = reader.read_unary()
    if m == 1:
        return quotient
    width = max(1, math.ceil(math.log2(m)))
    cutoff = (1 << width) - m
    remainder = reader.read_bits(width - 1) if width > 1 else 0
    if remainder >= cutoff:
        remainder = (remainder << 1) | reader.read_bit()
        remainder -= cutoff
    return quotient * m + remainder


def optimal_parameter(sorted_values: Sequence[int]) -> int:
    """The classic M ~ 0.69 * mean(gap) rule of thumb."""
    if not len(sorted_values):
        return 1
    span = int(sorted_values[-1]) + 1
    mean_gap = span / len(sorted_values)
    return max(1, int(round(0.69 * mean_gap)))


def golomb_encode(sorted_values: Sequence[int], m: int = None) -> Tuple[bytes, int]:
    """Encode a strictly increasing integer sequence.

    Returns (payload, m).  Values are delta-encoded (first value is its
    own gap from -1 minus one, so zero gaps never occur).
    """
    values = [int(v) for v in sorted_values]
    for left, right in zip(values, values[1:]):
        if right <= left:
            raise ValueError("values must be strictly increasing")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    if m is None:
        m = optimal_parameter(values)
    if m < 1:
        raise ValueError("parameter m must be >= 1")
    writer = BitWriter()
    previous = -1
    for value in values:
        _golomb_write(writer, value - previous - 1, m)
        previous = value
    return writer.getvalue(), m


def golomb_decode(payload, count: int, m: int) -> List[int]:
    """Decode *count* values encoded by :func:`golomb_encode`."""
    reader = BitReader(payload)
    values: List[int] = []
    previous = -1
    for __ in range(count):
        gap = _golomb_read(reader, m)
        previous = previous + gap + 1
        values.append(previous)
    return values


def golomb_decode_array(payload, count: int, m: int) -> np.ndarray:
    """:func:`golomb_decode` into a ``uint32`` array (store decode path)."""
    values = golomb_decode(payload, count, m)
    return np.fromiter(values, dtype=np.uint32, count=count)
