"""Golomb coding for compressed term-id lists (paper Section VI).

The paper notes the 400 MB relevance store "can be even further reduced
through ... integer compression techniques, such as Golomb Coding".
Sorted TID lists are delta-encoded and each gap is Golomb-coded with
parameter M: quotient in unary, remainder in truncated binary.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self):
        self._bytes = bytearray()
        self._bit_count = 0

    def write_bit(self, bit: int) -> None:
        index = self._bit_count >> 3
        if index == len(self._bytes):
            self._bytes.append(0)
        if bit:
            self._bytes[index] |= 0x80 >> (self._bit_count & 7)
        self._bit_count += 1

    def write_unary(self, value: int) -> None:
        for __ in range(value):
            self.write_bit(1)
        self.write_bit(0)

    def write_bits(self, value: int, width: int) -> None:
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        return bytes(self._bytes)

    @property
    def bit_length(self) -> int:
        return self._bit_count


class BitReader:
    """Sequential bit reader over bytes."""

    def __init__(self, data: bytes):
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        index = self._position >> 3
        if index >= len(self._data):
            raise EOFError("bit stream exhausted")
        bit = (self._data[index] >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_unary(self) -> int:
        count = 0
        while self.read_bit():
            count += 1
        return count

    def read_bits(self, width: int) -> int:
        value = 0
        for __ in range(width):
            value = (value << 1) | self.read_bit()
        return value


def _golomb_write(writer: BitWriter, value: int, m: int) -> None:
    quotient, remainder = divmod(value, m)
    writer.write_unary(quotient)
    # truncated binary for the remainder
    width = max(1, math.ceil(math.log2(m))) if m > 1 else 0
    if m == 1:
        return
    cutoff = (1 << width) - m
    if remainder < cutoff:
        writer.write_bits(remainder, width - 1)
    else:
        writer.write_bits(remainder + cutoff, width)


def _golomb_read(reader: BitReader, m: int) -> int:
    quotient = reader.read_unary()
    if m == 1:
        return quotient
    width = max(1, math.ceil(math.log2(m)))
    cutoff = (1 << width) - m
    remainder = reader.read_bits(width - 1) if width > 1 else 0
    if remainder >= cutoff:
        remainder = (remainder << 1) | reader.read_bit()
        remainder -= cutoff
    return quotient * m + remainder


def optimal_parameter(sorted_values: Sequence[int]) -> int:
    """The classic M ~ 0.69 * mean(gap) rule of thumb."""
    if not sorted_values:
        return 1
    span = sorted_values[-1] + 1
    mean_gap = span / len(sorted_values)
    return max(1, int(round(0.69 * mean_gap)))


def golomb_encode(sorted_values: Sequence[int], m: int = None) -> Tuple[bytes, int]:
    """Encode a strictly increasing integer sequence.

    Returns (payload, m).  Values are delta-encoded (first value is its
    own gap from -1 minus one, so zero gaps never occur).
    """
    values = list(sorted_values)
    for left, right in zip(values, values[1:]):
        if right <= left:
            raise ValueError("values must be strictly increasing")
    if any(v < 0 for v in values):
        raise ValueError("values must be non-negative")
    if m is None:
        m = optimal_parameter(values)
    if m < 1:
        raise ValueError("parameter m must be >= 1")
    writer = BitWriter()
    previous = -1
    for value in values:
        _golomb_write(writer, value - previous - 1, m)
        previous = value
    return writer.getvalue(), m


def golomb_decode(payload: bytes, count: int, m: int) -> List[int]:
    """Decode *count* values encoded by :func:`golomb_encode`."""
    reader = BitReader(payload)
    values: List[int] = []
    previous = -1
    for __ in range(count):
        gap = _golomb_read(reader, m)
        previous = previous + gap + 1
        values.append(previous)
    return values
