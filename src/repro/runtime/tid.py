"""The Global TID table and the packed relevance store (Section VI).

"In the implementation, the relevant keywords are represented by unique
term ids (perfect hashes). ... the system uses a global hash table
(Global TID Table) which simply maps a given term to its TID. ... the
largest TID value we need to support in the system is not too large and
can easily fit into 22 bits.  We normalize the scores of the relevant
terms to be in the range of 0 and 1023, so that they can fit in 10
bits.  So for each concept, we need 400 bytes to store its top 100
(TID, score) pairs, since each pair can be stored in 32 bits."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.features.quantize import dequantize, quantize
from repro.features.relevance import RelevanceModel, stemmed_terms
from repro.text.tokenized import DocumentLike
from repro.runtime.golomb import golomb_encode

TID_BITS = 22
SCORE_BITS = 10
MAX_TID = (1 << TID_BITS) - 1
MAX_SCORE_CODE = (1 << SCORE_BITS) - 1


class GlobalTidTable:
    """Stemmed term -> dense term id (a perfect-hash substitute)."""

    def __init__(self):
        self._tids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._tids)

    def __contains__(self, term: str) -> bool:
        return term in self._tids

    def assign(self, term: str) -> int:
        """The TID of *term*, assigning a new one if unseen."""
        tid = self._tids.get(term)
        if tid is None:
            tid = len(self._tids)
            if tid > MAX_TID:
                raise OverflowError("TID space (22 bits) exhausted")
            self._tids[term] = tid
        return tid

    def lookup(self, term: str) -> Optional[int]:
        """The TID of *term*, or None if the term is used by no concept."""
        return self._tids.get(term)

    def tids_of(self, terms: Iterable[str]) -> Set[int]:
        """TID set of a document's terms (unknown terms dropped)."""
        found = set()
        for term in terms:
            tid = self._tids.get(term)
            if tid is not None:
                found.add(tid)
        return found


def pack_pair(tid: int, score_code: int) -> int:
    """Pack (22-bit TID, 10-bit score) into one 32-bit integer."""
    if not 0 <= tid <= MAX_TID:
        raise ValueError("tid out of 22-bit range")
    if not 0 <= score_code <= MAX_SCORE_CODE:
        raise ValueError("score code out of 10-bit range")
    return (tid << SCORE_BITS) | score_code


def unpack_pair(packed: int) -> tuple:
    """Inverse of :func:`pack_pair`."""
    return packed >> SCORE_BITS, packed & MAX_SCORE_CODE


class PackedRelevanceStore:
    """Concept -> packed (TID, score) pairs; the runtime relevance scorer.

    Drop-in for :class:`repro.features.relevance.RelevanceScorer`: it
    exposes ``context_stems`` (returning a TID set) and ``score``.
    """

    def __init__(self, tid_table: GlobalTidTable, score_max: float):
        self._tids = tid_table
        self.score_max = float(score_max)
        self._packed: Dict[str, np.ndarray] = {}

    @property
    def tid_table(self) -> GlobalTidTable:
        return self._tids

    def __len__(self) -> int:
        return len(self._packed)

    def __contains__(self, phrase: str) -> bool:
        return phrase.lower() in self._packed

    def add(self, phrase: str, relevant_terms) -> None:
        """Pack one concept's relevant terms."""
        pairs: List[int] = []
        for term, score in relevant_terms:
            tid = self._tids.assign(term)
            code = quantize(score, self.score_max, SCORE_BITS)
            pairs.append(pack_pair(tid, code))
        self._packed[phrase.lower()] = np.asarray(sorted(pairs), dtype=np.uint32)

    def packed(self, phrase: str) -> np.ndarray:
        return self._packed.get(phrase.lower(), np.zeros(0, dtype=np.uint32))

    # -- RelevanceScorer protocol ------------------------------------------

    def context_stems(self, text: DocumentLike) -> Set[int]:
        """The TID set of a document (stemmed, stopword-free)."""
        return self._tids.tids_of(stemmed_terms(text))

    def score(self, phrase: str, context: Set[int]) -> float:
        """Summed dequantized scores of the concept's TIDs in context."""
        packed = self._packed.get(phrase.lower())
        if packed is None or not context:
            return 0.0
        total = 0.0
        for value in packed:
            tid, code = unpack_pair(int(value))
            if tid in context:
                total += dequantize(code, self.score_max, SCORE_BITS)
        return total

    def score_text(self, phrase: str, text: str) -> float:
        return self.score(phrase, self.context_stems(text))

    # -- storage accounting ------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes of packed pair storage (4 bytes per pair, as the paper)."""
        return sum(array.size * 4 for array in self._packed.values())

    def compressed_bytes(self) -> int:
        """Bytes if every concept's TID list were Golomb-coded.

        Scores stay at 10 bits each; TIDs are delta+Golomb coded.  This
        quantifies the paper's suggested optimization.
        """
        total_bits = 0
        for array in self._packed.values():
            tids = sorted({unpack_pair(int(v))[0] for v in array})
            if tids:
                payload, __ = golomb_encode(tids)
                total_bits += len(payload) * 8
            total_bits += array.size * SCORE_BITS
        return (total_bits + 7) // 8

    @classmethod
    def build(
        cls, model: RelevanceModel, tid_table: Optional[GlobalTidTable] = None
    ) -> "PackedRelevanceStore":
        """Build the store from an offline relevance model."""
        peak = 0.0
        for phrase in model.phrases():
            for __, score in model.relevant_terms(phrase):
                peak = max(peak, score)
        if tid_table is None:
            tid_table = GlobalTidTable()
        store = cls(tid_table, score_max=peak or 1.0)
        for phrase in model.phrases():
            store.add(phrase, model.relevant_terms(phrase))
        return store
