"""The Global TID table and the packed relevance store (Section VI).

"In the implementation, the relevant keywords are represented by unique
term ids (perfect hashes). ... the system uses a global hash table
(Global TID Table) which simply maps a given term to its TID. ... the
largest TID value we need to support in the system is not too large and
can easily fit into 22 bits.  We normalize the scores of the relevant
terms to be in the range of 0 and 1023, so that they can fit in 10
bits.  So for each concept, we need 400 bytes to store its top 100
(TID, score) pairs, since each pair can be stored in 32 bits."

The store keeps every concept's pairs in one columnar
:class:`~repro.runtime.arena.PhraseArena`; lookups are vectorized
(shift out the TID column, sorted-intersect against the document's TID
array, dequantize the matched codes) and bit-for-bit identical to the
seed per-element loop.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.features.relevance import RelevanceModel, stemmed_terms
from repro.obs import DEFAULT_SIZE_BUCKETS, get_registry
from repro.text.tokenized import DocumentLike
from repro.runtime.arena import (
    MAX_SCORE_CODE,
    MAX_TID,
    SCORE_BITS,
    TID_BITS,
    PhraseArena,
    as_tid_context,
    sorted_membership,
)
from repro.runtime.golomb import golomb_encode

__all__ = [
    "TID_BITS",
    "SCORE_BITS",
    "MAX_TID",
    "MAX_SCORE_CODE",
    "GlobalTidTable",
    "PackedRelevanceStore",
    "model_score_peak",
    "pack_pair",
    "unpack_pair",
]


class GlobalTidTable:
    """Stemmed term -> dense term id (a perfect-hash substitute)."""

    def __init__(self):
        self._tids: Dict[str, int] = {}
        self._next_tid = 0

    def __len__(self) -> int:
        return len(self._tids)

    def __contains__(self, term: str) -> bool:
        return term in self._tids

    def assign(self, term: str) -> int:
        """The TID of *term*, assigning a new one if unseen."""
        tid = self._tids.get(term)
        if tid is None:
            tid = self._next_tid
            if tid > MAX_TID:
                raise OverflowError("TID space (22 bits) exhausted")
            self._tids[term] = tid
            self._next_tid = tid + 1
        return tid

    def lookup(self, term: str) -> Optional[int]:
        """The TID of *term*, or None if the term is used by no concept."""
        return self._tids.get(term)

    def items(self) -> Iterable[Tuple[str, int]]:
        """(term, TID) pairs (data-pack serialization)."""
        return self._tids.items()

    def tids_of(self, terms: Iterable[str]) -> set:
        """TID set of a document's terms (unknown terms dropped)."""
        found = set()
        for term in terms:
            tid = self._tids.get(term)
            if tid is not None:
                found.add(tid)
        return found

    def tid_context(self, terms: Iterable[str]) -> np.ndarray:
        """Sorted unique TID array of *terms* — the vectorized context."""
        found = self.tids_of(terms)
        return np.fromiter(sorted(found), dtype=np.uint32, count=len(found))

    @classmethod
    def from_items(cls, items: Iterable[Sequence]) -> "GlobalTidTable":
        """Rebuild from explicit (term, TID) pairs (data-pack load path).

        Unlike :meth:`assign`, the pairs need not be dense: new
        assignments continue after the largest loaded TID.
        """
        table = cls()
        for term, tid in items:
            tid = int(tid)
            if not 0 <= tid <= MAX_TID:
                raise ValueError(f"TID {tid} out of 22-bit range")
            table._tids[str(term)] = tid
        table._next_tid = max(table._tids.values(), default=-1) + 1
        return table

    @classmethod
    def from_dense_terms(cls, terms: Sequence[str]) -> "GlobalTidTable":
        """Rebuild from a dense TID-ordered term list (``terms[tid]``)."""
        if len(terms) > MAX_TID + 1:
            raise ValueError("term list exceeds the 22-bit TID space")
        table = cls()
        table._tids = {term: tid for tid, term in enumerate(terms)}
        table._next_tid = len(terms)
        return table

    def dense_terms(self) -> Optional[List[str]]:
        """TID-ordered term list if the table is dense, else None."""
        terms: List[Optional[str]] = [None] * len(self._tids)
        for term, tid in self._tids.items():
            if not 0 <= tid < len(terms) or terms[tid] is not None:
                return None
            terms[tid] = term
        return terms


def pack_pair(tid: int, score_code: int) -> int:
    """Pack (22-bit TID, 10-bit score) into one 32-bit integer."""
    if not 0 <= tid <= MAX_TID:
        raise ValueError("tid out of 22-bit range")
    if not 0 <= score_code <= MAX_SCORE_CODE:
        raise ValueError("score code out of 10-bit range")
    return (tid << SCORE_BITS) | score_code


def unpack_pair(packed: int) -> tuple:
    """Inverse of :func:`pack_pair`."""
    return packed >> SCORE_BITS, packed & MAX_SCORE_CODE


def model_score_peak(model: RelevanceModel) -> float:
    """The largest relevant-term score in *model* (the quantizer scale)."""
    peak = 0.0
    for phrase in model.phrases():
        for __, score in model.relevant_terms(phrase):
            peak = max(peak, score)
    return peak


class PackedRelevanceStore:
    """Concept -> packed (TID, score) pairs; the runtime relevance scorer.

    Drop-in for :class:`repro.features.relevance.RelevanceScorer`: it
    exposes ``context_stems`` (returning a sorted TID array) and
    ``score``/``score_many``.  Mutations stage per-phrase arrays; the
    first lookup finalizes them into a columnar
    :class:`~repro.runtime.arena.PhraseArena` (data-pack loads adopt a
    ready arena directly, zero-copy).
    """

    def __init__(self, tid_table: GlobalTidTable, score_max: float):
        self._tids = tid_table
        self.score_max = float(score_max)
        self._staged: Dict[str, np.ndarray] = {}
        self._arena: Optional[PhraseArena] = None
        self._backing = None  # keeps a mapped data-pack alive
        registry = get_registry()
        self._m_lookups = registry.counter(
            "relevance_lookups_total",
            help="single-phrase relevance lookups",
            store="packed",
        )
        self._m_batch = registry.histogram(
            "relevance_score_many_phrases",
            help="phrases per packed score_many call",
            buckets=DEFAULT_SIZE_BUCKETS,
            store="packed",
        )

    @property
    def tid_table(self) -> GlobalTidTable:
        return self._tids

    def __len__(self) -> int:
        count = len(self._staged)
        if self._arena is not None:
            count += sum(
                1 for phrase in self._arena.phrases if phrase not in self._staged
            )
        return count

    def __contains__(self, phrase: str) -> bool:
        key = phrase.lower()
        if key in self._staged:
            return True
        return self._arena is not None and key in self._arena.rows

    def add(self, phrase: str, relevant_terms) -> None:
        """Pack one concept's relevant terms (staged until next lookup).

        Vectorized, but code-for-code what `quantize` + `pack_pair` per
        pair would produce: `np.rint` rounds half-to-even exactly like
        python `round`, `assign` enforces the 22-bit TID range, and the
        scaling runs in the same operand order in float64.
        """
        pairs = list(relevant_terms)
        if not pairs:
            self._staged[phrase.lower()] = np.zeros(0, dtype=np.uint32)
            return
        assign = self._tids.assign
        tids = np.fromiter(
            (assign(term) for term, __ in pairs), dtype=np.uint32, count=len(pairs)
        )
        packed = tids << np.uint32(SCORE_BITS)
        if self.score_max > 0:
            scores = np.fromiter(
                (score for __, score in pairs), dtype=np.float64, count=len(pairs)
            )
            codes = np.rint(scores / self.score_max * MAX_SCORE_CODE)
            packed |= np.clip(codes, 0, MAX_SCORE_CODE).astype(np.uint32)
        packed.sort()
        self._staged[phrase.lower()] = packed

    def _iter_segments(self):
        staged = self._staged
        if self._arena is None:
            yield from staged.items()
            return
        for row, phrase in enumerate(self._arena.phrases):
            override = staged.get(phrase)
            yield phrase, (
                override if override is not None else self._arena.segment(row)
            )
        for phrase, array in staged.items():
            if phrase not in self._arena.rows:
                yield phrase, array

    def arena(self) -> PhraseArena:
        """The finalized columnar arena (staged mutations merged in)."""
        if self._arena is None or self._staged:
            self._arena = PhraseArena.from_segments(self._iter_segments())
            self._staged = {}
        return self._arena

    def phrases(self) -> List[str]:
        """Phrases in arena row order."""
        return list(self.arena().phrases)

    def packed(self, phrase: str) -> np.ndarray:
        key = phrase.lower()
        staged = self._staged.get(key)
        if staged is not None:
            return staged
        if self._arena is not None:
            row = self._arena.rows.get(key)
            if row is not None:
                return self._arena.segment(row)
        return np.zeros(0, dtype=np.uint32)

    # -- RelevanceScorer protocol ------------------------------------------

    def context_stems(self, text: DocumentLike) -> np.ndarray:
        """The sorted TID array of a document (stemmed, stopword-free).

        A document stamped by a compiled detection kernel skips the stem
        strings entirely: the kernel maps interned token ids straight to
        TIDs (value-identical, see ``DetectionKernel.tid_context``).
        """
        kernel = getattr(text, "_kernel", None)
        if kernel is not None:
            return kernel.tid_context(text, self._tids)
        return self._tids.tid_context(stemmed_terms(text))

    def _sum_matched(self, values: np.ndarray) -> float:
        # Left-to-right scalar accumulation reproduces the seed loop's
        # float result bit-for-bit (np.sum's pairwise order would not).
        total = 0.0
        for value in values.tolist():
            total += value
        return total

    def score(self, phrase: str, context) -> float:
        """Summed dequantized scores of the concept's TIDs in context."""
        self._m_lookups.inc()
        ctx = as_tid_context(context)
        if ctx is None:
            return 0.0
        arena = self.arena()
        row = arena.rows.get(phrase.lower())
        if row is None:
            return 0.0
        segment = arena.segment(row)
        if not segment.size:
            return 0.0
        mask = sorted_membership(ctx, segment >> SCORE_BITS)
        if not mask.any():
            return 0.0
        codes = (segment[mask] & MAX_SCORE_CODE).astype(np.float64)
        return self._sum_matched(codes / MAX_SCORE_CODE * self.score_max)

    def score_many(self, phrases: Sequence[str], context) -> np.ndarray:
        """Vectorized scores for many phrases sharing one context.

        One flat gather + one sorted-intersect over every requested
        segment; only the matched pairs are dequantized and they are
        accumulated left-to-right per phrase, so each result is
        identical to :meth:`score`.
        """
        self._m_batch.observe(len(phrases))
        totals = [0.0] * len(phrases)
        ctx = as_tid_context(context)
        if ctx is None or not len(phrases):
            return np.asarray(totals)
        arena = self.arena()
        lookup = arena.rows.get
        rows = np.asarray(
            [lookup(phrase.lower(), -1) for phrase in phrases], dtype=np.int64
        )
        valid = np.flatnonzero(rows >= 0)
        if not valid.size:
            return np.asarray(totals)
        values, bounds = arena.gather(rows[valid])
        if not values.size:
            return np.asarray(totals)
        hits = np.flatnonzero(sorted_membership(ctx, values >> SCORE_BITS))
        if not hits.size:
            return np.asarray(totals)
        matched = (values[hits] & MAX_SCORE_CODE).astype(np.float64)
        matched = matched / MAX_SCORE_CODE * self.score_max
        # map each hit back to the phrase whose segment contains it
        owners = valid[bounds.searchsorted(hits, side="right")]
        for index, value in zip(owners.tolist(), matched.tolist()):
            totals[index] += value
        return np.asarray(totals)

    def score_text(self, phrase: str, text: str) -> float:
        return self.score(phrase, self.context_stems(text))

    # -- storage accounting ------------------------------------------------

    def memory_bytes(self) -> int:
        """Bytes of packed pair storage (4 bytes per pair, as the paper)."""
        return self.arena().pair_count * 4

    def compressed_bytes(self) -> int:
        """Bytes if every concept's TID list were Golomb-coded.

        Scores stay at 10 bits each; TIDs are delta+Golomb coded.  This
        quantifies the paper's suggested optimization.
        """
        total_bits = 0
        for __, segment in self.arena().segments():
            tids = np.unique(segment >> SCORE_BITS)
            if tids.size:
                payload, __m = golomb_encode(tids.tolist())
                total_bits += len(payload) * 8
            total_bits += segment.size * SCORE_BITS
        return (total_bits + 7) // 8

    @classmethod
    def build(
        cls,
        model: RelevanceModel,
        tid_table: Optional[GlobalTidTable] = None,
        score_max: Optional[float] = None,
    ) -> "PackedRelevanceStore":
        """Build the store from an offline relevance model.

        Pass *score_max* to skip the model scan when the quantizer scale
        is already known (e.g. rebuilding against a shared scale).
        """
        if score_max is None:
            score_max = model_score_peak(model) or 1.0
        if tid_table is None:
            tid_table = GlobalTidTable()
        store = cls(tid_table, score_max=score_max)
        for phrase in model.phrases():
            store.add(phrase, model.relevant_terms(phrase))
        return store

    @classmethod
    def from_arena(
        cls,
        tid_table: GlobalTidTable,
        score_max: float,
        arena: PhraseArena,
        backing=None,
    ) -> "PackedRelevanceStore":
        """Adopt a ready-made arena (the zero-copy data-pack load path).

        *backing* is held for the store's lifetime so a mapped pack's
        buffer outlives the arrays viewing it.
        """
        store = cls(tid_table, score_max=score_max)
        store._arena = arena
        store._backing = backing
        return store
