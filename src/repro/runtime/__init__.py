"""Production framework (Section VI): stores, TID tables, Golomb, service."""

from repro.runtime.arena import PhraseArena, as_tid_context, sorted_membership
from repro.runtime.compressed import CompressedRelevanceStore
from repro.runtime.datapack import (
    MappedPack,
    load_interestingness_store,
    load_ranker,
    load_relevance_store,
    open_pack,
    read_pack,
    save_interestingness_store,
    save_ranker,
    save_relevance_store,
    write_pack,
)
from repro.runtime.framework import RankerService, TimingStats
from repro.runtime.golomb import (
    BitReader,
    BitWriter,
    golomb_decode,
    golomb_decode_array,
    golomb_encode,
    optimal_parameter,
    unpack_fixed_width,
)
from repro.runtime.store import QuantizedInterestingnessStore
from repro.runtime.tid import (
    MAX_SCORE_CODE,
    MAX_TID,
    GlobalTidTable,
    PackedRelevanceStore,
    model_score_peak,
    pack_pair,
    unpack_pair,
)

__all__ = [
    "PhraseArena",
    "as_tid_context",
    "sorted_membership",
    "CompressedRelevanceStore",
    "MappedPack",
    "load_interestingness_store",
    "load_ranker",
    "load_relevance_store",
    "open_pack",
    "read_pack",
    "save_interestingness_store",
    "save_ranker",
    "save_relevance_store",
    "write_pack",
    "RankerService",
    "TimingStats",
    "BitReader",
    "BitWriter",
    "golomb_decode",
    "golomb_decode_array",
    "golomb_encode",
    "optimal_parameter",
    "unpack_fixed_width",
    "QuantizedInterestingnessStore",
    "MAX_SCORE_CODE",
    "MAX_TID",
    "GlobalTidTable",
    "PackedRelevanceStore",
    "model_score_peak",
    "pack_pair",
    "unpack_pair",
]
