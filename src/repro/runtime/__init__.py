"""Production framework (Section VI): stores, TID tables, Golomb, service."""

from repro.runtime.compressed import CompressedRelevanceStore
from repro.runtime.datapack import (
    load_interestingness_store,
    load_ranker,
    load_relevance_store,
    read_pack,
    save_interestingness_store,
    save_ranker,
    save_relevance_store,
    write_pack,
)
from repro.runtime.framework import RankerService, TimingStats
from repro.runtime.golomb import (
    BitReader,
    BitWriter,
    golomb_decode,
    golomb_encode,
    optimal_parameter,
)
from repro.runtime.store import QuantizedInterestingnessStore
from repro.runtime.tid import (
    MAX_SCORE_CODE,
    MAX_TID,
    GlobalTidTable,
    PackedRelevanceStore,
    pack_pair,
    unpack_pair,
)

__all__ = [
    "CompressedRelevanceStore",
    "load_interestingness_store",
    "load_ranker",
    "load_relevance_store",
    "read_pack",
    "save_interestingness_store",
    "save_ranker",
    "save_relevance_store",
    "write_pack",
    "RankerService",
    "TimingStats",
    "BitReader",
    "BitWriter",
    "golomb_decode",
    "golomb_encode",
    "optimal_parameter",
    "QuantizedInterestingnessStore",
    "MAX_SCORE_CODE",
    "MAX_TID",
    "GlobalTidTable",
    "PackedRelevanceStore",
    "pack_pair",
    "unpack_pair",
]
