"""Binary data-packs: persistence for the production stores and model.

The paper's detectors use "data-packs that are pre-loaded into memory to
allow for high-performance entity detection".  This module provides the
serialization layer those packs imply: a compact sectioned binary
container plus save/load functions for the quantized interestingness
store, the packed relevance store (with its Global TID table), and a
trained :class:`~repro.ranking.ranksvm.RankSVM`.

Container format: ``RPAK`` magic, u16 version, u32 section count, then
per section a length-prefixed UTF-8 name and a u64-length payload.  All
integers little-endian.  Version 2 additionally zero-pads so every
payload begins on an 8-byte boundary, which lets ``np.frombuffer``
view binary sections in place — :class:`MappedPack` opens a pack over
``mmap`` and the store loaders adopt the arena/matrix columns as
zero-copy views, so cold start is O(index), not O(corpus).  Version 1
packs (per-phrase blob index, dense TID term list) still load.  No
pickle — packs are safe to load from untrusted storage.
"""

from __future__ import annotations

import json
import mmap
import struct
import time
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.obs import get_registry

from repro.ranking.ranksvm import (
    RandomFourierFeatures,
    RankSVM,
    StandardScaler,
)
from repro.runtime.arena import PhraseArena
from repro.runtime.store import FIELD_COUNT, QuantizedInterestingnessStore
from repro.runtime.tid import GlobalTidTable, PackedRelevanceStore

_MAGIC = b"RPAK"
_VERSION = 2
_ALIGN = 8
_HEADER = len(_MAGIC) + 6  # magic + u16 version + u32 section count

PathLike = Union[str, Path]


# -- container ----------------------------------------------------------------


def write_pack(
    path: PathLike, sections: Dict[str, bytes], version: int = _VERSION
) -> None:
    """Write a sectioned binary pack to *path*."""
    if version not in (1, 2):
        raise ValueError(f"unsupported data-pack version {version}")
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HI", version, len(sections)))
        position = _HEADER
        for name, payload in sections.items():
            encoded = name.encode("utf-8")
            handle.write(struct.pack("<H", len(encoded)))
            handle.write(encoded)
            handle.write(struct.pack("<Q", len(payload)))
            position += 2 + len(encoded) + 8
            if version >= 2:
                padding = (-position) % _ALIGN
                handle.write(b"\x00" * padding)
                position += padding
            handle.write(payload)
            position += len(payload)


def _iter_sections(buffer) -> Iterator[Tuple[str, Tuple[int, int]]]:
    """Yield (name, (payload offset, payload length)) over a pack buffer."""
    if len(buffer) < len(_MAGIC) or bytes(buffer[: len(_MAGIC)]) != _MAGIC:
        raise ValueError(
            f"not a data-pack: bad magic {bytes(buffer[: len(_MAGIC)])!r}"
        )
    if len(buffer) < _HEADER:
        raise ValueError("truncated data-pack")
    version, count = struct.unpack_from("<HI", buffer, len(_MAGIC))
    if version not in (1, 2):
        raise ValueError(f"unsupported data-pack version {version}")
    position = _HEADER
    for __ in range(count):
        if position + 2 > len(buffer):
            raise ValueError("truncated data-pack")
        (name_length,) = struct.unpack_from("<H", buffer, position)
        position += 2
        if position + name_length + 8 > len(buffer):
            raise ValueError("truncated data-pack")
        name = bytes(buffer[position : position + name_length]).decode("utf-8")
        position += name_length
        (payload_length,) = struct.unpack_from("<Q", buffer, position)
        position += 8
        if version >= 2:
            position += (-position) % _ALIGN
        if position + payload_length > len(buffer):
            raise ValueError("truncated data-pack")
        yield name, (position, payload_length)
        position += payload_length


def read_pack(path: PathLike) -> Dict[str, bytes]:
    """Read a pack written by :func:`write_pack` (eager copies)."""
    data = Path(path).read_bytes()
    return {
        name: bytes(data[offset : offset + length])
        for name, (offset, length) in _iter_sections(data)
    }


class MappedPack:
    """A data-pack opened over ``mmap`` for zero-copy section access.

    Section views (and numpy arrays built on them) reference the map
    directly; the pack object must stay alive as long as they do — the
    store loaders keep it as their backing reference.
    """

    def __init__(self, path: PathLike):
        started = time.perf_counter()
        self._file = open(path, "rb")
        try:
            self._map = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as error:
            self._file.close()
            raise ValueError(f"cannot map data-pack: {error}") from error
        self._view = memoryview(self._map)
        try:
            self._spans = dict(_iter_sections(self._view))
        except Exception:
            self.close()
            raise
        # Cold-start telemetry: open+index time, mapped bytes, and the
        # size of every section (the paper's 400 MB / 18 MB accounting).
        registry = get_registry()
        registry.counter(
            "pack_opens_total", help="data-packs opened via mmap"
        ).inc()
        registry.histogram(
            "pack_open_seconds", help="mmap open + section index time"
        ).observe(time.perf_counter() - started)
        registry.counter(
            "pack_bytes_mapped_total", help="bytes mapped across opened packs"
        ).inc(len(self._view))
        for name, (__, length) in self._spans.items():
            registry.counter(
                "pack_section_bytes_total",
                help="section payload bytes across opened packs",
                section=name,
            ).inc(length)

    def names(self) -> List[str]:
        return list(self._spans)

    def __contains__(self, name: str) -> bool:
        return name in self._spans

    def get(self, name: str):
        """Zero-copy memoryview of one section (None if absent)."""
        span = self._spans.get(name)
        if span is None:
            return None
        offset, length = span
        return self._view[offset : offset + length]

    def __getitem__(self, name: str):
        view = self.get(name)
        if view is None:
            raise KeyError(name)
        return view

    def close(self) -> None:
        """Release the map.  Only safe once no section views remain."""
        self._view.release()
        self._map.close()
        self._file.close()

    def __enter__(self) -> "MappedPack":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_pack(path: PathLike) -> MappedPack:
    """Open a data-pack for zero-copy (mmap) section access."""
    return MappedPack(path)


def _json_bytes(value) -> bytes:
    return json.dumps(value).encode("utf-8")


def _json_load(payload) -> object:
    return json.loads(bytes(payload).decode("utf-8"))


def _sections_of(path: PathLike, use_mmap: bool):
    """(section mapping, backing object to keep alive) for a load."""
    if use_mmap:
        pack = MappedPack(path)
        return pack, pack
    return read_pack(path), None


def _kind_of(sections) -> bytes:
    view = sections.get("kind")
    return b"" if view is None else bytes(view)


# -- interestingness store ------------------------------------------------------


def save_interestingness_store(
    store: QuantizedInterestingnessStore, path: PathLike
) -> None:
    """Persist a quantized interestingness store (columnar, v2)."""
    phrases, matrix = store.columns()
    write_pack(
        path,
        {
            "kind": b"interestingness",
            "meta": _json_bytes(
                {"field_max": store.field_max(), "phrases": phrases}
            ),
            "rows": np.ascontiguousarray(matrix, dtype="<u2").tobytes(),
        },
    )


def load_interestingness_store(
    path: PathLike, use_mmap: bool = True
) -> QuantizedInterestingnessStore:
    sections, backing = _sections_of(path, use_mmap)
    if _kind_of(sections) != b"interestingness":
        raise ValueError("pack does not contain an interestingness store")
    meta = _json_load(sections["meta"])
    matrix = np.frombuffer(sections["rows"], dtype="<u2").reshape(
        (-1, FIELD_COUNT)
    )
    return QuantizedInterestingnessStore.from_columns(
        meta["field_max"], meta["phrases"], matrix, backing=backing
    )


# -- relevance store ------------------------------------------------------------


def save_relevance_store(
    store: PackedRelevanceStore, path: PathLike, version: int = _VERSION
) -> None:
    """Persist a packed relevance store with its Global TID table.

    Version 2 (default) writes the columnar arena: one aligned pairs
    column plus an offsets column, loadable as zero-copy views.
    Version 1 writes the legacy per-phrase blob layout for
    compatibility/benchmark comparisons.
    """
    if version == 1:
        _save_relevance_store_v1(store, path)
        return
    arena = store.arena()
    # dense tables serialize as a TID-ordered term list (half the JSON,
    # fast dict rebuild); sparse tables fall back to (term, TID) pairs
    terms = store.tid_table.dense_terms()
    if terms is None:
        terms = [[term, tid] for term, tid in store.tid_table.items()]
    write_pack(
        path,
        {
            "kind": b"relevance",
            "meta": _json_bytes(
                {
                    "score_max": store.score_max,
                    "terms": terms,
                    "phrases": arena.phrases,
                }
            ),
            "offsets": np.ascontiguousarray(arena.offsets, dtype="<i8").tobytes(),
            "pairs": np.ascontiguousarray(arena.pairs, dtype="<u4").tobytes(),
        },
    )


def _save_relevance_store_v1(store: PackedRelevanceStore, path: PathLike) -> None:
    """The seed layout: JSON per-phrase index + dense TID term list."""
    tid_table = store.tid_table
    terms: List = [None] * len(tid_table)
    for term, tid in tid_table.items():
        terms[tid] = term
    index = []
    blobs = []
    offset = 0
    for phrase in sorted(store.phrases()):
        packed = store.packed(phrase)
        index.append({"phrase": phrase, "offset": offset, "count": int(packed.size)})
        blobs.append(packed.astype("<u4").tobytes())
        offset += int(packed.size)
    write_pack(
        path,
        {
            "kind": b"relevance",
            "meta": _json_bytes(
                {"score_max": store.score_max, "terms": terms, "index": index}
            ),
            "pairs": b"".join(blobs),
        },
        version=1,
    )


def load_relevance_store(
    path: PathLike, use_mmap: bool = True
) -> PackedRelevanceStore:
    """Load a relevance store; v2 packs adopt the arena as mapped views."""
    sections, backing = _sections_of(path, use_mmap)
    if _kind_of(sections) != b"relevance":
        raise ValueError("pack does not contain a relevance store")
    meta = _json_load(sections["meta"])
    pairs = np.frombuffer(sections["pairs"], dtype="<u4")
    if "offsets" in sections:  # v2 columnar layout
        terms = meta["terms"]
        if terms and isinstance(terms[0], list):  # sparse (term, TID) pairs
            tid_table = GlobalTidTable.from_items(terms)
        else:
            tid_table = GlobalTidTable.from_dense_terms(terms)
        offsets = np.frombuffer(sections["offsets"], dtype="<i8")
        arena = PhraseArena(pairs, offsets, meta["phrases"])
    else:  # v1 legacy per-phrase index (dense term list)
        tid_table = GlobalTidTable()
        for term in meta["terms"]:
            tid_table.assign(term)
        phrases = [entry["phrase"] for entry in meta["index"]]
        offsets = np.zeros(len(phrases) + 1, dtype=np.int64)
        for row, entry in enumerate(meta["index"]):
            if entry["offset"] != int(offsets[row]):
                raise ValueError("non-contiguous v1 relevance index")
            offsets[row + 1] = entry["offset"] + entry["count"]
        arena = PhraseArena(pairs, offsets, phrases)
    return PackedRelevanceStore.from_arena(
        tid_table, meta["score_max"], arena, backing=backing
    )


# -- compiled detection kernel ----------------------------------------------------

_AUTOMATON_COLUMNS = ("delta", "fail", "out_len", "emits", "out_next", "sym")


def save_detection_kernel(kernel, path: PathLike) -> None:
    """Persist a compiled :class:`~repro.detection.kernel.DetectionKernel`.

    Layout (v2, so every column is 8-byte aligned for zero-copy views):
    one ``<i4`` section per automaton column under a ``concepts_`` /
    ``named_`` / ``units_`` prefix (plus ``<f8`` ``units_out_score``),
    the ``<u1`` stem-flags column, the ``<f8`` single-term unit scores,
    and a JSON meta section carrying the vocabulary, the stem strings,
    and each automaton's phrase count.
    """
    automata = {}
    sections: Dict[str, bytes] = {"kind": b"detection"}
    for prefix in ("concepts", "named", "units"):
        automaton = getattr(kernel, prefix)
        if automaton is None:
            continue
        columns = automaton.columns()
        automata[prefix] = {"phrase_count": automaton.phrase_count}
        for column in _AUTOMATON_COLUMNS:
            sections[f"{prefix}_{column}"] = np.ascontiguousarray(
                columns[column], dtype="<i4"
            ).tobytes()
        if "out_score" in columns:
            sections[f"{prefix}_out_score"] = np.ascontiguousarray(
                columns["out_score"], dtype="<f8"
            ).tobytes()
    sections["meta"] = _json_bytes(
        {
            "vocab": kernel.interner.terms,
            "stems": kernel.stem_table.stems,
            "automata": automata,
        }
    )
    sections["stem_flags"] = bytes(kernel.stem_table.flags)
    sections["unit_single_scores"] = np.ascontiguousarray(
        kernel.unit_single_scores, dtype="<f8"
    ).tobytes()
    write_pack(path, sections)


def load_detection_kernel(path: PathLike):
    """Load a compiled detection kernel pack.

    The flat columns are viewed with ``np.frombuffer`` (the v2 8-byte
    alignment makes that valid in place) and materialized into the
    kernel's Python scan tables — list indexing beats numpy scalar
    indexing in the token loop — so the pack is read eagerly rather
    than kept mapped: nothing would reference the map after load.
    """
    from repro.detection.kernel import (
        DetectionKernel,
        FlatAutomaton,
        StemTable,
        TokenInterner,
    )

    sections = read_pack(path)
    if _kind_of(sections) != b"detection":
        raise ValueError("pack does not contain a detection kernel")
    meta = _json_load(sections["meta"])
    interner = TokenInterner(meta["vocab"])
    stem_table = StemTable(bytes(sections["stem_flags"]), meta["stems"])
    automata = {}
    for prefix, info in meta["automata"].items():
        columns = {
            column: np.frombuffer(sections[f"{prefix}_{column}"], dtype="<i4")
            for column in _AUTOMATON_COLUMNS
        }
        score_payload = sections.get(f"{prefix}_out_score")
        automata[prefix] = FlatAutomaton(
            interner,
            phrase_count=int(info["phrase_count"]),
            out_score=(
                None
                if score_payload is None
                else np.frombuffer(score_payload, dtype="<f8")
            ),
            **columns,
        )
    return DetectionKernel(
        interner,
        stem_table,
        concepts=automata.get("concepts"),
        named=automata.get("named"),
        units=automata.get("units"),
        unit_single_scores=np.frombuffer(
            sections["unit_single_scores"], dtype="<f8"
        ),
    )


# -- trained ranking model --------------------------------------------------------


def save_ranker(model: RankSVM, path: PathLike) -> None:
    """Persist a fitted RankSVM (weights, scaler, feature map, config)."""
    if model.weights_ is None:
        raise ValueError("cannot save an unfitted model")
    config = {
        "c": model.c,
        "epochs": model.epochs,
        "kernel": model.kernel,
        "gamma": model.gamma,
        "n_components": model.n_components,
        "min_label_gap": model.min_label_gap,
        "max_pairs_per_group": model.max_pairs_per_group,
        "weight_pairs_by_label_gap": model.weight_pairs_by_label_gap,
        "seed": model.seed,
    }
    sections: Dict[str, bytes] = {
        "kind": b"ranksvm",
        "meta": _json_bytes(config),
        "weights": model.weights_.astype("<f8").tobytes(),
        "scaler_mean": model._scaler.mean_.astype("<f8").tobytes(),
        "scaler_scale": model._scaler.scale_.astype("<f8").tobytes(),
    }
    if model._feature_map is not None:
        sections["rff_weights"] = model._feature_map._weights.astype(
            "<f8"
        ).tobytes()
        sections["rff_offsets"] = model._feature_map._offsets.astype(
            "<f8"
        ).tobytes()
    write_pack(path, sections)


def load_ranker(path: PathLike) -> RankSVM:
    sections = read_pack(path)
    if sections.get("kind") != b"ranksvm":
        raise ValueError("pack does not contain a RankSVM model")
    config = _json_load(sections["meta"])
    model = RankSVM(**config)
    model.weights_ = np.frombuffer(sections["weights"], dtype="<f8").copy()
    scaler = StandardScaler()
    scaler.mean_ = np.frombuffer(sections["scaler_mean"], dtype="<f8").copy()
    scaler.scale_ = np.frombuffer(sections["scaler_scale"], dtype="<f8").copy()
    model._scaler = scaler
    if "rff_weights" in sections:
        feature_map = RandomFourierFeatures(
            gamma=config["gamma"],
            n_components=config["n_components"],
            seed=config["seed"],
        )
        n_features = scaler.mean_.shape[0]
        feature_map._weights = (
            np.frombuffer(sections["rff_weights"], dtype="<f8")
            .reshape((n_features, config["n_components"]))
            .copy()
        )
        feature_map._offsets = np.frombuffer(
            sections["rff_offsets"], dtype="<f8"
        ).copy()
        model._feature_map = feature_map
    return model
