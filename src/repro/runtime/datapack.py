"""Binary data-packs: persistence for the production stores and model.

The paper's detectors use "data-packs that are pre-loaded into memory to
allow for high-performance entity detection".  This module provides the
serialization layer those packs imply: a compact sectioned binary
container plus save/load functions for the quantized interestingness
store, the packed relevance store (with its Global TID table), and a
trained :class:`~repro.ranking.ranksvm.RankSVM`.

Format: ``RPAK`` magic, u16 version, u32 section count, then per
section a length-prefixed UTF-8 name and a u64-length payload.  All
integers little-endian.  No pickle — packs are safe to load from
untrusted storage.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.ranking.ranksvm import (
    RandomFourierFeatures,
    RankSVM,
    StandardScaler,
)
from repro.runtime.store import FIELD_COUNT, QuantizedInterestingnessStore
from repro.runtime.tid import GlobalTidTable, PackedRelevanceStore

_MAGIC = b"RPAK"
_VERSION = 1

PathLike = Union[str, Path]


# -- container ----------------------------------------------------------------


def write_pack(path: PathLike, sections: Dict[str, bytes]) -> None:
    """Write a sectioned binary pack to *path*."""
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HI", _VERSION, len(sections)))
        for name, payload in sections.items():
            encoded = name.encode("utf-8")
            handle.write(struct.pack("<H", len(encoded)))
            handle.write(encoded)
            handle.write(struct.pack("<Q", len(payload)))
            handle.write(payload)


def read_pack(path: PathLike) -> Dict[str, bytes]:
    """Read a pack written by :func:`write_pack`."""
    with open(path, "rb") as handle:
        magic = handle.read(4)
        if magic != _MAGIC:
            raise ValueError(f"not a data-pack: bad magic {magic!r}")
        version, count = struct.unpack("<HI", handle.read(6))
        if version != _VERSION:
            raise ValueError(f"unsupported data-pack version {version}")
        sections: Dict[str, bytes] = {}
        for __ in range(count):
            (name_len,) = struct.unpack("<H", handle.read(2))
            name = handle.read(name_len).decode("utf-8")
            (payload_len,) = struct.unpack("<Q", handle.read(8))
            payload = handle.read(payload_len)
            if len(payload) != payload_len:
                raise ValueError("truncated data-pack")
            sections[name] = payload
        return sections


def _json_bytes(value) -> bytes:
    return json.dumps(value).encode("utf-8")


def _json_load(payload: bytes):
    return json.loads(payload.decode("utf-8"))


# -- interestingness store ------------------------------------------------------


def save_interestingness_store(
    store: QuantizedInterestingnessStore, path: PathLike
) -> None:
    """Persist a quantized interestingness store."""
    phrases = store.phrases()
    rows = np.vstack([store._rows[p] for p in phrases]) if phrases else np.zeros(
        (0, FIELD_COUNT), dtype=np.uint16
    )
    write_pack(
        path,
        {
            "kind": b"interestingness",
            "meta": _json_bytes(
                {"field_max": store._field_max, "phrases": phrases}
            ),
            "rows": rows.astype("<u2").tobytes(),
        },
    )


def load_interestingness_store(path: PathLike) -> QuantizedInterestingnessStore:
    sections = read_pack(path)
    if sections.get("kind") != b"interestingness":
        raise ValueError("pack does not contain an interestingness store")
    meta = _json_load(sections["meta"])
    store = QuantizedInterestingnessStore(meta["field_max"])
    rows = np.frombuffer(sections["rows"], dtype="<u2").reshape(
        (-1, FIELD_COUNT)
    )
    for phrase, row in zip(meta["phrases"], rows):
        store._rows[phrase] = row.astype(np.uint16)
    return store


# -- relevance store ------------------------------------------------------------


def save_relevance_store(store: PackedRelevanceStore, path: PathLike) -> None:
    """Persist a packed relevance store with its Global TID table."""
    tid_table = store.tid_table
    terms = [None] * len(tid_table)
    for term, tid in tid_table._tids.items():
        terms[tid] = term
    index = []
    blobs = []
    offset = 0
    for phrase in sorted(store._packed):
        packed = store._packed[phrase]
        index.append({"phrase": phrase, "offset": offset, "count": int(packed.size)})
        blobs.append(packed.astype("<u4").tobytes())
        offset += int(packed.size)
    write_pack(
        path,
        {
            "kind": b"relevance",
            "meta": _json_bytes(
                {"score_max": store.score_max, "terms": terms, "index": index}
            ),
            "pairs": b"".join(blobs),
        },
    )


def load_relevance_store(path: PathLike) -> PackedRelevanceStore:
    sections = read_pack(path)
    if sections.get("kind") != b"relevance":
        raise ValueError("pack does not contain a relevance store")
    meta = _json_load(sections["meta"])
    tid_table = GlobalTidTable()
    for term in meta["terms"]:
        tid_table.assign(term)
    store = PackedRelevanceStore(tid_table, score_max=meta["score_max"])
    pairs = np.frombuffer(sections["pairs"], dtype="<u4")
    for entry in meta["index"]:
        start = entry["offset"]
        stop = start + entry["count"]
        store._packed[entry["phrase"]] = pairs[start:stop].astype(np.uint32)
    return store


# -- trained ranking model --------------------------------------------------------


def save_ranker(model: RankSVM, path: PathLike) -> None:
    """Persist a fitted RankSVM (weights, scaler, feature map, config)."""
    if model.weights_ is None:
        raise ValueError("cannot save an unfitted model")
    config = {
        "c": model.c,
        "epochs": model.epochs,
        "kernel": model.kernel,
        "gamma": model.gamma,
        "n_components": model.n_components,
        "min_label_gap": model.min_label_gap,
        "max_pairs_per_group": model.max_pairs_per_group,
        "weight_pairs_by_label_gap": model.weight_pairs_by_label_gap,
        "seed": model.seed,
    }
    sections: Dict[str, bytes] = {
        "kind": b"ranksvm",
        "meta": _json_bytes(config),
        "weights": model.weights_.astype("<f8").tobytes(),
        "scaler_mean": model._scaler.mean_.astype("<f8").tobytes(),
        "scaler_scale": model._scaler.scale_.astype("<f8").tobytes(),
    }
    if model._feature_map is not None:
        sections["rff_weights"] = model._feature_map._weights.astype(
            "<f8"
        ).tobytes()
        sections["rff_offsets"] = model._feature_map._offsets.astype(
            "<f8"
        ).tobytes()
    write_pack(path, sections)


def load_ranker(path: PathLike) -> RankSVM:
    sections = read_pack(path)
    if sections.get("kind") != b"ranksvm":
        raise ValueError("pack does not contain a RankSVM model")
    config = _json_load(sections["meta"])
    model = RankSVM(**config)
    model.weights_ = np.frombuffer(sections["weights"], dtype="<f8").copy()
    scaler = StandardScaler()
    scaler.mean_ = np.frombuffer(sections["scaler_mean"], dtype="<f8").copy()
    scaler.scale_ = np.frombuffer(sections["scaler_scale"], dtype="<f8").copy()
    model._scaler = scaler
    if "rff_weights" in sections:
        feature_map = RandomFourierFeatures(
            gamma=config["gamma"],
            n_components=config["n_components"],
            seed=config["seed"],
        )
        n_features = scaler.mean_.shape[0]
        feature_map._weights = (
            np.frombuffer(sections["rff_weights"], dtype="<f8")
            .reshape((n_features, config["n_components"]))
            .copy()
        )
        feature_map._offsets = np.frombuffer(
            sections["rff_offsets"], dtype="<f8"
        ).copy()
        model._feature_map = feature_map
    return model
