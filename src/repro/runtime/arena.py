"""Columnar arena shared by the serving stores (paper Section VI).

The seed stores kept one tiny numpy array per concept in a Python dict
and walked its packed pairs in a Python loop on every lookup.  The
arena flips the layout to structure-of-arrays: ONE contiguous
``uint32`` column of packed (22-bit TID, 10-bit score) pairs, an
``int64`` offsets index (concept *i* owns rows
``offsets[i]:offsets[i+1]``), and a phrase -> row table.  Scoring
becomes array-at-a-time numpy over segment views, and data-packs can
expose the two columns straight off disk (``np.frombuffer`` over an
``mmap``) so cold start costs O(index), not O(corpus).

The same phrase -> row discipline backs the fixed-stride matrix of the
quantized interestingness store; this module holds the variable-stride
(pairs + offsets) form plus the TID-context helpers both relevance
stores share.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

TID_BITS = 22
SCORE_BITS = 10
MAX_TID = (1 << TID_BITS) - 1
MAX_SCORE_CODE = (1 << SCORE_BITS) - 1


def as_tid_context(context) -> Optional[np.ndarray]:
    """Normalize a scoring context to a sorted unique ``uint32`` array.

    Accepts the arrays produced by ``context_stems`` (already sorted and
    unique), plain Python sets/iterables of TIDs (the seed protocol),
    and None.  Empty contexts normalize to None so callers can
    short-circuit to a zero score.
    """
    if context is None:
        return None
    if isinstance(context, np.ndarray):
        if context.size == 0:
            return None
        return context
    if not context:
        return None
    ordered = sorted(context)
    return np.fromiter(ordered, dtype=np.uint32, count=len(ordered))


def sorted_membership(context: np.ndarray, tids: np.ndarray) -> np.ndarray:
    """Boolean mask of which *tids* occur in the sorted unique *context*.

    Uses a dense boolean table over ``[0, max(context)]`` — one linear
    gather instead of a binary search per TID.  The table is bounded by
    the 22-bit TID space (at most 512 KB of bools), so the allocation
    stays trivial next to the pair column it filters.
    """
    top = int(context[-1])
    table = np.zeros(top + 2, dtype=np.bool_)
    table[context] = True
    # TIDs above every context value clamp to the always-False sentinel.
    return table[np.minimum(tids, top + 1)]


class PhraseArena:
    """Contiguous packed-pair column + offsets index + phrase -> row table.

    ``pairs`` is sorted within each segment (ascending packed value, i.e.
    ascending TID); ``offsets`` has ``len(phrases) + 1`` entries.  The
    arrays may be read-only views over a mapped data-pack — the arena
    never mutates them.
    """

    __slots__ = ("pairs", "offsets", "phrases", "rows")

    def __init__(
        self,
        pairs: np.ndarray,
        offsets: np.ndarray,
        phrases: Iterable[str],
    ):
        self.pairs = pairs
        self.offsets = offsets
        self.phrases: List[str] = list(phrases)
        if len(self.offsets) != len(self.phrases) + 1:
            raise ValueError("offsets must have one more entry than phrases")
        self.rows: Dict[str, int] = {
            phrase: row for row, phrase in enumerate(self.phrases)
        }

    def __len__(self) -> int:
        return len(self.phrases)

    def __contains__(self, phrase: str) -> bool:
        return phrase in self.rows

    @property
    def pair_count(self) -> int:
        return int(self.offsets[-1]) if len(self.offsets) else 0

    def row(self, phrase: str) -> Optional[int]:
        return self.rows.get(phrase)

    def segment(self, row: int) -> np.ndarray:
        """The packed-pair view of one concept (no copy)."""
        return self.pairs[int(self.offsets[row]) : int(self.offsets[row + 1])]

    def segments(self) -> Iterable[Tuple[str, np.ndarray]]:
        """(phrase, segment view) in row order."""
        for row, phrase in enumerate(self.phrases):
            yield phrase, self.segment(row)

    def gather(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Flattened pair values for many rows plus per-row end bounds.

        Returns ``(values, bounds)`` where ``values`` concatenates the
        requested segments in order and ``bounds`` is the cumulative
        segment-length array (``values[bounds[i-1]:bounds[i]]`` is row
        ``rows[i]``'s segment).  One fancy-index gather instead of a
        Python loop over segments.
        """
        starts = self.offsets[rows]
        lengths = self.offsets[rows + 1] - starts
        bounds = np.cumsum(lengths)
        total = int(bounds[-1]) if len(bounds) else 0
        if total == 0:
            return np.zeros(0, dtype=self.pairs.dtype), bounds
        if bool((np.diff(rows) == 1).all()):
            # consecutive rows (e.g. a full-store scan): slice, no gather
            lo = int(starts[0])
            return self.pairs[lo : lo + total], bounds
        flat = np.repeat(starts - (bounds - lengths), lengths) + np.arange(total)
        return self.pairs[flat], bounds

    @classmethod
    def from_segments(
        cls, items: Iterable[Tuple[str, np.ndarray]]
    ) -> "PhraseArena":
        """Concatenate per-phrase pair arrays into one arena (copies)."""
        phrases: List[str] = []
        arrays: List[np.ndarray] = []
        for phrase, array in items:
            phrases.append(phrase)
            arrays.append(array)
        offsets = np.zeros(len(phrases) + 1, dtype=np.int64)
        if arrays:
            offsets[1:] = np.cumsum([array.size for array in arrays])
            pairs = np.concatenate(arrays).astype(np.uint32, copy=False)
        else:
            pairs = np.zeros(0, dtype=np.uint32)
        return cls(pairs, offsets, phrases)
