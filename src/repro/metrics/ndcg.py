"""NDCG with CTR bucketing (paper Section V-A.2, equation 6).

    NDCG_doc = N * sum_{j=1..k} (2^score(j) - 1) / log(j + 1)

where ``score(j) = bucketNo(CTR(j)) / 100`` and ``bucketNo`` maps a CTR
to a bucket number between 0 and 1000 "considering all the CTR values
observed in the system in increasing order" — i.e. a rank/quantile
transform over the global CTR population, giving judgement scores
between 0.00 and 10.00.  The normalizer N makes a perfect ordering
score 1.0.  The paper's worked examples pin the log to base e, which
the tests verify.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


class CTRBucketizer:
    """bucketNo(): global quantile transform of CTR values into 0..1000."""

    def __init__(self, buckets: int = 1000):
        self.buckets = buckets
        self._sorted: np.ndarray = np.zeros(0)

    def fit(self, all_ctrs: Sequence[float]) -> "CTRBucketizer":
        """Record the system-wide CTR population."""
        self._sorted = np.sort(np.asarray(list(all_ctrs), dtype=float))
        return self

    def bucket(self, ctr: float) -> int:
        """The bucket number (0..buckets) of one CTR value."""
        if self._sorted.size == 0:
            raise RuntimeError("bucketizer is not fitted")
        rank = np.searchsorted(self._sorted, ctr, side="right")
        return int(round(rank / self._sorted.size * self.buckets))

    def judgment(self, ctr: float) -> float:
        """score() of equation 6: bucketNo / 100, in [0, 10]."""
        return self.bucket(ctr) / 100.0


def dcg_at_k(judgments_in_rank_order: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of the first *k* results."""
    total = 0.0
    for position, judgment in enumerate(judgments_in_rank_order[:k], start=1):
        total += (2.0 ** judgment - 1.0) / math.log(position + 1.0)
    return total


def ndcg_at_k(
    judgments: Sequence[float],
    predicted_scores: Sequence[float],
    k: int,
) -> float:
    """NDCG@k for one ranking group.

    *judgments* are the gain labels (e.g. bucketized CTRs); the ranking
    under evaluation is induced by *predicted_scores* (descending,
    stable).  Groups whose ideal DCG is zero score 1.0 (nothing to get
    wrong).
    """
    judgments = np.asarray(judgments, dtype=float)
    predicted = np.asarray(predicted_scores, dtype=float)
    if judgments.shape != predicted.shape:
        raise ValueError("judgments and predicted scores must align")
    order = np.argsort(-predicted, kind="stable")
    achieved = dcg_at_k(judgments[order].tolist(), k)
    ideal = dcg_at_k(np.sort(judgments)[::-1].tolist(), k)
    if ideal == 0.0:
        return 1.0
    return achieved / ideal


def mean_ndcg(
    judgments: Sequence[float],
    predicted_scores: Sequence[float],
    groups: Sequence[int],
    k: int,
) -> float:
    """Average NDCG@k over ranking groups (documents/windows)."""
    judgments = np.asarray(judgments, dtype=float)
    predicted = np.asarray(predicted_scores, dtype=float)
    groups = np.asarray(groups)
    scores = [
        ndcg_at_k(judgments[groups == g], predicted[groups == g], k)
        for g in np.unique(groups)
    ]
    return float(np.mean(scores)) if scores else 1.0
