"""Evaluation metrics: (weighted) pairwise error rate and bucketized NDCG."""

from repro.metrics.error_rate import (
    EMPTY_ERRORS,
    PairwiseErrors,
    error_rate,
    grouped_errors,
    pairwise_errors,
    weighted_error_rate,
)
from repro.metrics.ndcg import CTRBucketizer, dcg_at_k, mean_ndcg, ndcg_at_k

__all__ = [
    "EMPTY_ERRORS",
    "PairwiseErrors",
    "error_rate",
    "grouped_errors",
    "pairwise_errors",
    "weighted_error_rate",
    "CTRBucketizer",
    "dcg_at_k",
    "mean_ndcg",
    "ndcg_at_k",
]
