"""Pairwise error-rate metrics (paper Section V-A.2, equations 4-5).

* **error rate** — the fraction of preference pairs ordered wrongly;
* **weighted error rate** — each mistake weighted by the pair's CTR
  difference, "since CTRs usually reflect the strength of the
  preferences":

      WER = sum_{mistaken pairs} |ctr_i - ctr_j|
            --------------------------------------
            sum_{all pairs}      |ctr_i - ctr_j|

Pairs are formed within ranking groups only.  A predicted tie on a
strict preference counts as half a mistake — the expectation under the
random tie-break the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PairwiseErrors:
    """Accumulated pair statistics for one or more groups."""

    mistakes: float
    mistake_weight: float
    total_pairs: float
    total_weight: float

    @property
    def error_rate(self) -> float:
        """Equation 4: |mistaken pairs| / |all pairs|."""
        return self.mistakes / self.total_pairs if self.total_pairs else 0.0

    @property
    def weighted_error_rate(self) -> float:
        """Equation 5: CTR-difference-weighted error rate."""
        return self.mistake_weight / self.total_weight if self.total_weight else 0.0

    def __add__(self, other: "PairwiseErrors") -> "PairwiseErrors":
        return PairwiseErrors(
            self.mistakes + other.mistakes,
            self.mistake_weight + other.mistake_weight,
            self.total_pairs + other.total_pairs,
            self.total_weight + other.total_weight,
        )


EMPTY_ERRORS = PairwiseErrors(0.0, 0.0, 0.0, 0.0)


def pairwise_errors(
    labels: Sequence[float], predicted: Sequence[float]
) -> PairwiseErrors:
    """Pair statistics for one group (one document/window ranking)."""
    labels = np.asarray(labels, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if labels.shape != predicted.shape:
        raise ValueError("labels and predicted scores must align")
    mistakes = mistake_weight = total = total_weight = 0.0
    count = labels.shape[0]
    for a in range(count):
        for b in range(a + 1, count):
            gap = labels[a] - labels[b]
            if gap == 0.0:
                continue
            weight = abs(gap)
            total += 1.0
            total_weight += weight
            score_gap = predicted[a] - predicted[b]
            if score_gap == 0.0:
                mistakes += 0.5
                mistake_weight += 0.5 * weight
            elif (score_gap > 0) != (gap > 0):
                mistakes += 1.0
                mistake_weight += weight
    return PairwiseErrors(mistakes, mistake_weight, total, total_weight)


def grouped_errors(
    labels: Sequence[float],
    predicted: Sequence[float],
    groups: Sequence[int],
) -> PairwiseErrors:
    """Accumulate pair statistics over many ranking groups."""
    labels = np.asarray(labels, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    groups = np.asarray(groups)
    result = EMPTY_ERRORS
    for group in np.unique(groups):
        mask = groups == group
        result = result + pairwise_errors(labels[mask], predicted[mask])
    return result


def error_rate(labels, predicted) -> float:
    """Equation 4 for a single group."""
    return pairwise_errors(labels, predicted).error_rate


def weighted_error_rate(labels, predicted) -> float:
    """Equation 5 for a single group."""
    return pairwise_errors(labels, predicted).weighted_error_rate
