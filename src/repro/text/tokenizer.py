"""Tokenization with character offsets, sentence and paragraph boundaries.

The Contextual Shortcuts pre-processing stage (paper Section II) performs
"HTML parsing, tokenization, sentence, and paragraph boundary detection".
This module supplies the tokenization and boundary-detection pieces.

Tokens carry character offsets into the original text so that detected
entities can later be annotated in place (the paper's "output annotation"
step) and so that documents can be partitioned into character windows
(Section V-A.1) without losing token alignment.
"""

from __future__ import annotations

import itertools
import re
import threading
from dataclasses import dataclass
from typing import Iterator, List

_TOKEN_RE = re.compile(
    r"""
    [A-Za-z]+(?:'[A-Za-z]+)?   # words, with internal apostrophe (don't, O'Brien)
    | \d+(?:[.,]\d+)*          # numbers, incl. 1,234.5
    | \S                       # any other single non-space char (punctuation)
    """,
    re.VERBOSE,
)

# The word branch of _TOKEN_RE alone.  For ASCII text, its matches are
# exactly the _TOKEN_RE matches that pass the is-word filter: the number
# and \S branches can never consume a letter (so no word is hidden
# inside another token), and a match of the word branch is maximal
# either way.  Non-ASCII text breaks the equivalence (a single non-ASCII
# letter tokenizes via \S yet passes isalpha), so fast paths gate on
# `str.isascii`.
_WORD_RE = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?")

# Sentence terminators followed by whitespace and an upper-case/digit start.
_SENTENCE_BOUNDARY_RE = re.compile(r"(?<=[.!?])\s+(?=[A-Z0-9\"'(])")

_PARAGRAPH_BOUNDARY_RE = re.compile(r"\n\s*\n")

# Invocation counter for the hot-path benchmarks: the single-pass
# refactor is judged by how many times `tokenize` runs per document, so
# the count must be observable from outside the module.  The counter
# itself is an `itertools.count` — a single atomic `next()` on the hot
# path, so `tokenize` never takes a lock and concurrent `process_batch`
# workers cannot lose increments.  Readers subtract the draws the
# accessor functions themselves consume (each read/reset burns one tick)
# plus the baseline recorded at the last reset; that bookkeeping is
# mutated under `_COUNTER_LOCK` since reads are not performance-critical.
_counter = itertools.count()
_COUNTER_LOCK = threading.Lock()
_counter_overhead = 0  # ticks consumed by read/reset calls, not tokenize
_counter_base = 0  # tokenize ticks already counted at the last reset


def tokenize_call_count() -> int:
    """Number of `tokenize` invocations since the last reset."""
    global _counter_overhead
    with _COUNTER_LOCK:
        drawn = next(_counter)
        calls = drawn - _counter_overhead - _counter_base
        _counter_overhead += 1
        return calls


def reset_tokenize_call_count() -> None:
    """Zero the invocation counter (benchmark/test instrumentation)."""
    global _counter_overhead, _counter_base
    with _COUNTER_LOCK:
        drawn = next(_counter)
        _counter_base = drawn - _counter_overhead
        _counter_overhead += 1


_ABBREVIATIONS = frozenset(
    {
        "mr", "mrs", "ms", "dr", "prof", "sen", "rep", "gov", "gen",
        "col", "sgt", "lt", "st", "jr", "sr", "inc", "corp", "co",
        "vs", "etc", "e.g", "i.e", "u.s", "u.k", "no", "dept",
    }
)


@dataclass(frozen=True)
class Token:
    """A token with its character span in the source text."""

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        """Lower-cased token text."""
        return self.text.lower()

    def is_word(self) -> bool:
        """True if the token starts with a letter (not punctuation/number)."""
        return self.text[:1].isalpha()


def tokenize(text: str) -> List[Token]:
    """Split *text* into tokens, keeping character offsets.

    >>> [t.text for t in tokenize("Sen. Clinton, who argued...")]
    ['Sen', '.', 'Clinton', ',', 'who', 'argued', '.', '.', '.']
    """
    next(_counter)
    return [
        Token(match.group(), match.start(), match.end())
        for match in _TOKEN_RE.finditer(text)
    ]


def word_spans(text: str):
    """``(words, starts, ends)`` for word tokens only, one regex pass.

    The words are exactly ``tokenize_lower(text)`` and the offsets are
    exactly the word tokens' ``start``/``end`` spans, but no
    :class:`Token` objects are materialized — this is the single-pass
    hot path's tokenization: the lists feed the shared
    ``TokenizedDocument`` views and the compiled detection kernels.
    Counts as one ``tokenize`` invocation.
    """
    next(_counter)
    if not text.isascii():
        words: List[str] = []
        starts: List[int] = []
        ends: List[int] = []
        for match in _TOKEN_RE.finditer(text):
            token = match.group()
            if token[:1].isalpha():
                words.append(token.lower())
                starts.append(match.start())
                ends.append(match.end())
        return words, starts, ends
    # ASCII fast path: lower-casing the whole text first is one C pass,
    # is 1:1 length-preserving for ASCII (offsets unchanged), and maps
    # letters to letters (the match set is unchanged), so findall on the
    # lowered text yields the lower-cased words directly.  Offsets come
    # from `str.find` resuming after the previous word: the gap between
    # consecutive word matches contains no letters (any letter would
    # itself be part of a word match), and every word starts with a
    # letter, so the first occurrence at/after the previous end IS the
    # match position.
    lowered = text.lower()
    words = _WORD_RE.findall(lowered)
    starts = []
    ends = []
    append_start = starts.append
    append_end = ends.append
    find = lowered.find
    position = 0
    for word in words:
        position = find(word, position)
        append_start(position)
        position += len(word)
        append_end(position)
    return words, starts, ends


def tokenize_lower(text: str) -> List[str]:
    """Lower-cased word tokens only (punctuation dropped).

    This is the normalization used throughout feature extraction: the
    paper lower-cases all terms and strips surrounding punctuation.
    """
    return [token.lower for token in tokenize(text) if token.is_word()]


def words_lower(text: str) -> List[str]:
    """Exactly `tokenize_lower`, without materializing Token objects.

    `_TOKEN_RE` has only non-capturing groups, so ``findall`` yields the
    same full-match strings `tokenize` wraps; the word filter and
    lower-casing are the same expressions `Token` applies.  This is the
    offline-build hot path, where character offsets are never needed.
    """
    next(_counter)
    if text.isascii():
        # lower-first: same matches, already lower-cased (see word_spans)
        return _WORD_RE.findall(text.lower())
    return [match.lower() for match in _TOKEN_RE.findall(text) if match[:1].isalpha()]


def _is_abbreviation_boundary(text: str, boundary_start: int) -> bool:
    """True if the sentence split at *boundary_start* follows an abbreviation."""
    prefix = text[:boundary_start].rstrip()
    if not prefix.endswith("."):
        return False
    word_match = re.search(r"([A-Za-z][A-Za-z.]*)\.$", prefix)
    if word_match is None:
        return False
    return word_match.group(1).lower() in _ABBREVIATIONS


def sentences(text: str) -> List[str]:
    """Split *text* into sentences using punctuation heuristics.

    Common abbreviations ("Sen.", "Dr.", "U.S.") do not end sentences.
    """
    pieces: List[str] = []
    last = 0
    for match in _SENTENCE_BOUNDARY_RE.finditer(text):
        if _is_abbreviation_boundary(text, match.start()):
            continue
        pieces.append(text[last : match.start()].strip())
        last = match.end()
    tail = text[last:].strip()
    if tail:
        pieces.append(tail)
    return [piece for piece in pieces if piece]


def paragraphs(text: str) -> List[str]:
    """Split *text* into paragraphs on blank lines."""
    return [part.strip() for part in _PARAGRAPH_BOUNDARY_RE.split(text) if part.strip()]


def iter_ngrams(words: List[str], max_len: int) -> Iterator[tuple]:
    """Yield all contiguous word n-grams up to *max_len* as tuples.

    Used by the dictionary and concept detectors to enumerate candidate
    phrases in a document.
    """
    count = len(words)
    for size in range(1, max_len + 1):
        for start in range(count - size + 1):
            yield tuple(words[start : start + size])
