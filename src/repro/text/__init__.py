"""Text-processing substrate.

Everything the Contextual Shortcuts pipeline needs before entity
detection can run: HTML stripping, tokenization with sentence and
paragraph boundaries, Porter stemming, stopword filtering, and tf*idf
vectorization.  All implemented from scratch; no external NLP
dependencies.
"""

from repro.text.html import strip_html
from repro.text.stemmer import PorterStemmer, stem
from repro.text.stopwords import STOPWORDS, is_stopword
from repro.text.tokenized import TokenizedDocument
from repro.text.tokenizer import (
    Token,
    paragraphs,
    reset_tokenize_call_count,
    sentences,
    tokenize,
    tokenize_call_count,
    tokenize_lower,
)
from repro.text.vectorize import (
    DocumentFrequencyTable,
    TermVector,
    term_frequencies,
)

__all__ = [
    "strip_html",
    "PorterStemmer",
    "stem",
    "STOPWORDS",
    "is_stopword",
    "Token",
    "TokenizedDocument",
    "tokenize",
    "tokenize_call_count",
    "reset_tokenize_call_count",
    "tokenize_lower",
    "sentences",
    "paragraphs",
    "term_frequencies",
    "TermVector",
    "DocumentFrequencyTable",
]
