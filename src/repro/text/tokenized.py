"""A document tokenized exactly once, shared by every pipeline stage.

The production hot path (paper Section VI) runs a document through the
stemmer, three detectors, the concept-vector scorer, and the relevance
context lookup.  Each of those consumes some view of the same token
stream — raw tokens with offsets, lower-cased words, or stemmed
stopword-free terms.  ``TokenizedDocument`` computes each view lazily,
at most once, and caches it, so the whole service pays for one
tokenization pass and one stemming pass per document instead of one per
stage.

Every string-based entry point in the pipeline remains available as a
thin wrapper that builds a private ``TokenizedDocument``, so callers
holding only a ``str`` see unchanged behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Set, Union

from repro.text.stemmer import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenizer import Token, tokenize


class TokenizedDocument:
    """Lazily materialized, cached views of one document's tokens.

    The views mirror the seed's per-stage computations exactly:

    * ``tokens``        -- ``tokenize(text)``
    * ``word_tokens``   -- word tokens only (offsets kept for spans)
    * ``words``         -- ``tokenize_lower(text)``
    * ``stemmed_terms`` -- ``features.relevance.stemmed_terms(text)``
    * ``stem_set``      -- the relevance scorer's context set

    Cached lists are shared with callers; treat them as read-only.
    """

    __slots__ = (
        "text",
        "_tokens",
        "_word_tokens",
        "_words",
        "_stemmed_terms",
        "_stem_set",
    )

    def __init__(self, text: str):
        self.text = text
        self._tokens: Optional[List[Token]] = None
        self._word_tokens: Optional[List[Token]] = None
        self._words: Optional[List[str]] = None
        self._stemmed_terms: Optional[List[str]] = None
        self._stem_set: Optional[Set[str]] = None

    @classmethod
    def of(cls, source: Union[str, "TokenizedDocument"]) -> "TokenizedDocument":
        """Coerce a raw string or an existing document to a document."""
        if isinstance(source, cls):
            return source
        return cls(source)

    @property
    def tokens(self) -> List[Token]:
        """All tokens with character offsets (one tokenizer pass, ever)."""
        if self._tokens is None:
            self._tokens = tokenize(self.text)
        return self._tokens

    @property
    def word_tokens(self) -> List[Token]:
        """Word tokens only, offsets preserved (what the matchers walk)."""
        if self._word_tokens is None:
            self._word_tokens = [t for t in self.tokens if t.is_word()]
        return self._word_tokens

    @property
    def words(self) -> List[str]:
        """Lower-cased word tokens (``tokenize_lower`` equivalent)."""
        if self._words is None:
            self._words = [t.lower for t in self.word_tokens]
        return self._words

    @property
    def stemmed_terms(self) -> List[str]:
        """Stemmed, stopword-free content terms (the Stemmer pass)."""
        if self._stemmed_terms is None:
            self._stemmed_terms = [
                stem(word) for word in self.words if not is_stopword(word)
            ]
        return self._stemmed_terms

    @property
    def stem_set(self) -> Set[str]:
        """The stemmed context set consumed by the relevance scorers."""
        if self._stem_set is None:
            self._stem_set = set(self.stemmed_terms)
        return self._stem_set

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenizedDocument({self.text[:40]!r}, {len(self.text)} chars)"


DocumentLike = Union[str, TokenizedDocument]
