"""A document tokenized exactly once, shared by every pipeline stage.

The production hot path (paper Section VI) runs a document through the
stemmer, three detectors, the concept-vector scorer, and the relevance
context lookup.  Each of those consumes some view of the same token
stream — raw tokens with offsets, lower-cased words, or stemmed
stopword-free terms.  ``TokenizedDocument`` computes each view lazily,
at most once, and caches it, so the whole service pays for one
tokenization pass and one stemming pass per document instead of one per
stage.

The word views (``words``/``word_starts``/``word_ends``) come from the
tokenizer's :func:`~repro.text.tokenizer.word_spans` fast path, which
never materializes :class:`~repro.text.tokenizer.Token` objects; the
full ``tokens`` view is built only if a consumer actually asks for it.
The compiled detection kernels additionally share one interned
token-id view per document (:meth:`token_ids` / :meth:`token_id_array`),
cached against the kernel's interner so the stemmer table, both
automata, and the concept-vector scorer intern each document once.

Every string-based entry point in the pipeline remains available as a
thin wrapper that builds a private ``TokenizedDocument``, so callers
holding only a ``str`` see unchanged behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Set, Union

from repro.text.stemmer import stem
from repro.text.stopwords import is_stopword
from repro.text.tokenizer import Token, tokenize, word_spans


class TokenizedDocument:
    """Lazily materialized, cached views of one document's tokens.

    The views mirror the seed's per-stage computations exactly:

    * ``tokens``        -- ``tokenize(text)``
    * ``word_tokens``   -- word tokens only (offsets kept for spans)
    * ``words``         -- ``tokenize_lower(text)``
    * ``word_starts``/``word_ends`` -- the word tokens' char spans
    * ``stemmed_terms`` -- ``features.relevance.stemmed_terms(text)``
    * ``stem_set``      -- the relevance scorer's context set
    * ``token_ids``     -- interned ids against a kernel's interner

    Cached lists are shared with callers; treat them as read-only.
    """

    __slots__ = (
        "text",
        "_tokens",
        "_word_tokens",
        "_words",
        "_word_starts",
        "_word_ends",
        "_stemmed_terms",
        "_stem_set",
        "_interner",
        "_token_ids",
        "_token_id_array",
        "_kernel",
        "_kernel_scan",
    )

    def __init__(self, text: str):
        self.text = text
        self._tokens: Optional[List[Token]] = None
        self._word_tokens: Optional[List[Token]] = None
        self._words: Optional[List[str]] = None
        self._word_starts: Optional[List[int]] = None
        self._word_ends: Optional[List[int]] = None
        self._stemmed_terms: Optional[List[str]] = None
        self._stem_set: Optional[Set[str]] = None
        self._interner = None
        self._token_ids: Optional[List[int]] = None
        self._token_id_array = None
        # Stamped by DetectionKernel.stem_document: downstream stages
        # (stemmed view, relevance TID context) then run table-driven.
        self._kernel = None
        # (kernel, result) of the kernel's combined automaton scan —
        # the three detector consumers share one pass per document.
        self._kernel_scan = None

    @classmethod
    def of(cls, source: Union[str, "TokenizedDocument"]) -> "TokenizedDocument":
        """Coerce a raw string or an existing document to a document."""
        if isinstance(source, cls):
            return source
        return cls(source)

    @property
    def tokens(self) -> List[Token]:
        """All tokens with character offsets (one tokenizer pass, ever)."""
        if self._tokens is None:
            self._tokens = tokenize(self.text)
        return self._tokens

    @property
    def word_tokens(self) -> List[Token]:
        """Word tokens only, offsets preserved (the Token-object view)."""
        if self._word_tokens is None:
            self._word_tokens = [t for t in self.tokens if t.is_word()]
        return self._word_tokens

    def _ensure_words(self) -> None:
        if self._words is not None:
            return
        if self._tokens is not None:
            # the Token view already exists: derive, don't re-tokenize
            word_tokens = self.word_tokens
            self._words = [t.lower for t in word_tokens]
            self._word_starts = [t.start for t in word_tokens]
            self._word_ends = [t.end for t in word_tokens]
            return
        self._words, self._word_starts, self._word_ends = word_spans(self.text)

    @property
    def words(self) -> List[str]:
        """Lower-cased word tokens (``tokenize_lower`` equivalent)."""
        self._ensure_words()
        return self._words

    @property
    def word_starts(self) -> List[int]:
        """Character start offset of each word token."""
        self._ensure_words()
        return self._word_starts

    @property
    def word_ends(self) -> List[int]:
        """Character end offset of each word token."""
        self._ensure_words()
        return self._word_ends

    @property
    def stemmed_terms(self) -> List[str]:
        """Stemmed, stopword-free content terms (the Stemmer pass).

        With a detection kernel stamped on the document the view comes
        from the kernel's precomputed stem table (string-for-string
        identical, Porter only for OOV words); otherwise it is the
        per-word Porter pass.
        """
        if self._stemmed_terms is None:
            kernel = self._kernel
            if kernel is not None:
                self._stemmed_terms = kernel.stemmed_document_terms(self)
            else:
                self._stemmed_terms = [
                    stem(word) for word in self.words if not is_stopword(word)
                ]
        return self._stemmed_terms

    def adopt_stemmed_terms(self, terms: List[str]) -> List[str]:
        """Install a precomputed ``stemmed_terms`` view (kernel stem pass).

        The caller guarantees *terms* equals what :attr:`stemmed_terms`
        would compute (the compiled stem table is built from the same
        ``stem``/``is_stopword`` functions).  A view that was already
        materialized is kept — the first computation wins, so the cached
        views can never disagree with each other.
        """
        if self._stemmed_terms is None:
            self._stemmed_terms = terms
        return self._stemmed_terms

    @property
    def stem_set(self) -> Set[str]:
        """The stemmed context set consumed by the relevance scorers."""
        if self._stem_set is None:
            self._stem_set = set(self.stemmed_terms)
        return self._stem_set

    # -- interned token-id views (compiled detection kernels) -----------

    def token_ids(self, interner) -> List[int]:
        """Interned id per word token (one interning pass per document).

        *interner* is a :class:`~repro.detection.kernel.TokenInterner`;
        out-of-vocabulary words map to its OOV sentinel id.  The id list
        is cached against the interner's identity, so every kernel
        consumer (stem table, both automata, the scorer) shares one
        interning pass.  A different interner recomputes and replaces
        the cache (the pipeline only ever attaches one kernel).
        """
        if self._token_ids is None or self._interner is not interner:
            self._interner = interner
            self._token_ids = interner.ids(self.words)
            self._token_id_array = None
        return self._token_ids

    def token_id_array(self, interner):
        """The :meth:`token_ids` list as a cached ``int32`` numpy array."""
        ids = self.token_ids(interner)
        if self._token_id_array is None:
            import numpy as np

            self._token_id_array = np.asarray(ids, dtype=np.int32)
        return self._token_id_array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenizedDocument({self.text[:40]!r}, {len(self.text)} chars)"


DocumentLike = Union[str, TokenizedDocument]
