"""Minimal HTML parsing for the pre-processing stage.

The paper's pipeline starts with "HTML parsing"; published news stories
arrive as markup.  We implement a small, dependency-free HTML-to-text
converter that preserves block structure as paragraph breaks, which the
downstream sentence/paragraph boundary detection relies on.
"""

from __future__ import annotations

import re
from html import unescape

_SCRIPT_STYLE_RE = re.compile(
    r"<(script|style)\b[^>]*>.*?</\1\s*>", re.IGNORECASE | re.DOTALL
)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_BLOCK_TAG_RE = re.compile(
    r"</?(p|div|br|h[1-6]|li|ul|ol|tr|table|blockquote|section|article)\b[^>]*>",
    re.IGNORECASE,
)
_TAG_RE = re.compile(r"<[^>]+>")
_MULTI_BLANK_RE = re.compile(r"\n{3,}")
_SPACES_RE = re.compile(r"[ \t]{2,}")


def strip_html(markup: str) -> str:
    """Convert *markup* into plain text.

    Script/style bodies and comments are removed entirely; block-level
    tags become paragraph breaks; all remaining tags are dropped; HTML
    entities are unescaped.

    >>> strip_html("<p>Hello <b>world</b></p><p>Bye</p>")
    'Hello world\\n\\nBye'
    """
    text = _SCRIPT_STYLE_RE.sub(" ", markup)
    text = _COMMENT_RE.sub(" ", text)
    text = _BLOCK_TAG_RE.sub("\n\n", text)
    text = _TAG_RE.sub(" ", text)
    text = unescape(text)
    text = _SPACES_RE.sub(" ", text)
    lines = [line.strip() for line in text.split("\n")]
    text = "\n".join(lines)
    text = _MULTI_BLANK_RE.sub("\n\n", text)
    return text.strip()
