"""Term vectors and tf*idf machinery (Salton & Buckley weighting).

Implements the term-vector half of the paper's concept-vector generation
(Section II-B): tf*idf scores against a term dictionary holding
term-document frequencies over a large corpus, stop-word removal,
normalization into [0, 1], sub-threshold punishment, and pruning.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.text.stopwords import is_stopword
from repro.text.tokenizer import tokenize_lower


def term_frequencies(text: str, remove_stopwords: bool = True) -> Counter:
    """Count word occurrences in *text* (lower-cased, punctuation dropped)."""
    words = tokenize_lower(text)
    if remove_stopwords:
        words = [word for word in words if not is_stopword(word)]
    return Counter(words)


class DocumentFrequencyTable:
    """Term -> document-frequency dictionary over a reference corpus.

    The paper's term dictionary "contains the term-document frequencies
    (i.e. the number of documents of a large web corpus containing the
    dictionary term)".  idf uses the standard smoothed formulation.
    """

    def __init__(self, total_documents: int = 0):
        self._doc_freq: Counter = Counter()
        self.total_documents = int(total_documents)
        # idf memo tables; every mutation invalidates them (the values
        # depend on total_documents, so any add changes every entry).
        self._idf_cache: Dict[str, float] = {}
        self._raw_idf_cache: Dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._doc_freq)

    def __contains__(self, term: str) -> bool:
        return term in self._doc_freq

    def document_frequency(self, term: str) -> int:
        """Number of corpus documents containing *term* (0 if unseen)."""
        return self._doc_freq.get(term, 0)

    def add_document(self, terms: Iterable[str]) -> None:
        """Register one document's distinct terms."""
        self._doc_freq.update(set(terms))
        self.total_documents += 1
        if self._idf_cache:
            self._idf_cache.clear()
        if self._raw_idf_cache:
            self._raw_idf_cache.clear()

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency; positive for any term.

        The +1 floor keeps every term's weight non-zero, which the term
        vector of the concept-vector baseline wants (common words are
        then handled by the punish/prune thresholds).  Memoized per
        term; the cache is dropped whenever a document is added.
        """
        cached = self._idf_cache.get(term)
        if cached is None:
            df = self._doc_freq.get(term, 0)
            cached = math.log((1.0 + self.total_documents) / (1.0 + df)) + 1.0
            self._idf_cache[term] = cached
        return cached

    def raw_idf(self, term: str) -> float:
        """Classic un-floored idf: log((1+N)/(1+df)).

        Terms occurring in nearly every document get ~0 weight — the
        behaviour the relevant-keyword miner needs so that ubiquitous
        background words cannot accumulate mass for junk concepts.
        Memoized like :meth:`idf`.
        """
        cached = self._raw_idf_cache.get(term)
        if cached is None:
            df = self._doc_freq.get(term, 0)
            cached = math.log((1.0 + self.total_documents) / (1.0 + df))
            self._raw_idf_cache[term] = cached
        return cached

    @classmethod
    def from_counts(
        cls, doc_freq: Mapping[str, int], total_documents: int
    ) -> "DocumentFrequencyTable":
        """Wrap precomputed document-frequency counts (offline builder)."""
        table = cls(total_documents)
        table._doc_freq = Counter(
            {term: int(count) for term, count in doc_freq.items() if count}
        )
        return table

    def tf_idf(self, counts: Mapping[str, int]) -> Dict[str, float]:
        """Raw (un-normalized) tf*idf scores for a term-count mapping."""
        cache = self._idf_cache
        try:
            # all-hits fast path: one comprehension, no per-term probes.
            # idf() memoizes, so after warm-up misses are the exception.
            return {term: count * cache[term] for term, count in counts.items()}
        except KeyError:
            pass
        idf = self.idf
        return {term: count * idf(term) for term, count in counts.items()}

    @classmethod
    def from_documents(cls, documents: Iterable[Iterable[str]]) -> "DocumentFrequencyTable":
        """Build a table from an iterable of token iterables."""
        table = cls()
        for terms in documents:
            table.add_document(terms)
        return table


class TermVector:
    """A sparse term -> weight vector with the paper's normalizations.

    Supports the three operations the concept-vector algorithm applies:
    normalization into [0, 1], punishing weights below a threshold, and
    pruning weights below a (lower) threshold.
    """

    def __init__(self, weights: Mapping[str, float] = ()):
        self.weights: Dict[str, float] = dict(weights)
        # Euclidean norm cache: vectors are treated as immutable after
        # construction (every shaping operation returns a new vector),
        # so the norm never needs recomputing once known.
        self._norm: float = -1.0

    @classmethod
    def _adopt(cls, weights: Dict[str, float]) -> "TermVector":
        """Wrap a freshly built dict without the defensive copy.

        Internal: the caller must hand over sole ownership of *weights*
        (the vector treats it as immutable from here on).
        """
        self = cls.__new__(cls)
        self.weights = weights
        self._norm = -1.0
        return self

    def __len__(self) -> int:
        return len(self.weights)

    def __contains__(self, term: str) -> bool:
        return term in self.weights

    def __getitem__(self, term: str) -> float:
        return self.weights[term]

    def get(self, term: str, default: float = 0.0) -> float:
        return self.weights.get(term, default)

    def items(self) -> Iterable[Tuple[str, float]]:
        return self.weights.items()

    def normalized(self) -> "TermVector":
        """Scale weights into [0, 1] by the maximum weight."""
        if not self.weights:
            return TermVector()
        peak = max(self.weights.values())
        if peak <= 0:
            return TermVector({term: 0.0 for term in self.weights})
        return TermVector(
            {term: weight / peak for term, weight in self.weights.items()}
        )

    def punished_below(self, threshold: float, factor: float = 0.5) -> "TermVector":
        """Multiply weights under *threshold* by *factor* (paper: "punished")."""
        if factor == 1.0 or not any(w < threshold for w in self.weights.values()):
            return self
        return TermVector(
            {
                term: weight * factor if weight < threshold else weight
                for term, weight in self.weights.items()
            }
        )

    def pruned_below(self, threshold: float) -> "TermVector":
        """Drop entries whose weight is below *threshold*."""
        if not any(w < threshold for w in self.weights.values()):
            return self
        return TermVector(
            {
                term: weight
                for term, weight in self.weights.items()
                if weight >= threshold
            }
        )

    def shaped(
        self,
        punish_threshold: float,
        punish_factor: float,
        prune_threshold: float,
        normalize: bool = True,
    ) -> "TermVector":
        """``normalized()`` (optional) → ``punished_below`` →
        ``pruned_below`` fused into one pass.

        Applies the exact per-entry float operations of the chained
        methods in the same order (divide, conditionally multiply,
        filter), so the result is float-identical — it just skips the
        intermediate dict builds and the two ``any()`` pre-scans.
        """
        weights = self.weights
        if not weights:
            return TermVector()
        out: Dict[str, float] = {}
        if normalize:
            peak = max(weights.values())
            if peak <= 0:
                # normalized() pins every weight to literal 0.0 here
                value = 0.0 * punish_factor if 0.0 < punish_threshold else 0.0
                if value >= prune_threshold:
                    for term in weights:
                        out[term] = value
                return TermVector._adopt(out)
            for term, weight in weights.items():
                value = weight / peak
                if value < punish_threshold:
                    value *= punish_factor
                if value >= prune_threshold:
                    out[term] = value
            return TermVector._adopt(out)
        for term, value in weights.items():
            if value < punish_threshold:
                value *= punish_factor
            if value >= prune_threshold:
                out[term] = value
        return TermVector._adopt(out)

    def top(self, count: int) -> List[Tuple[str, float]]:
        """Highest-weighted *count* entries, ties broken alphabetically."""
        return sorted(self.weights.items(), key=lambda item: (-item[1], item[0]))[
            :count
        ]

    def norm(self) -> float:
        """Euclidean norm, computed once and cached."""
        # .get: instances unpickled from pre-cache payloads lack _norm
        norm = self.__dict__.get("_norm", -1.0)
        if norm < 0.0:
            norm = math.sqrt(sum(w * w for w in self.weights.values()))
            self._norm = norm
        return norm

    def cosine_similarity(self, other: "TermVector") -> float:
        """Cosine similarity between two sparse vectors."""
        if not self.weights or not other.weights:
            return 0.0
        smaller, larger = (
            (self.weights, other.weights)
            if len(self.weights) <= len(other.weights)
            else (other.weights, self.weights)
        )
        dot = sum(
            weight * larger[term]
            for term, weight in smaller.items()
            if term in larger
        )
        norm_self = self.norm()
        norm_other = other.norm()
        if norm_self == 0 or norm_other == 0:
            return 0.0
        return dot / (norm_self * norm_other)
