"""Porter stemming algorithm (Porter, 1980), implemented from scratch.

The paper stems every relevant term before it enters the Global TID
table (Sections IV-B and VI), so the stemmer sits on the hot path of the
production framework.  This is a faithful implementation of the original
five-step algorithm from "An algorithm for suffix stripping".
"""

from __future__ import annotations

from typing import List

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless Porter stemmer.

    >>> PorterStemmer().stem("relational")
    'relat'
    >>> PorterStemmer().stem("caresses")
    'caress'
    """

    # -- character classification ------------------------------------

    def _is_consonant(self, word: str, index: int) -> bool:
        char = word[index]
        if char in _VOWELS:
            return False
        if char == "y":
            if index == 0:
                return True
            return not self._is_consonant(word, index - 1)
        return True

    def _measure(self, stem: str) -> int:
        """The Porter measure m: number of VC sequences in *stem*."""
        forms: List[str] = []
        for index in range(len(stem)):
            if self._is_consonant(stem, index):
                if not forms or forms[-1] != "c":
                    forms.append("c")
            else:
                if not forms or forms[-1] != "v":
                    forms.append("v")
        pattern = "".join(forms)
        if pattern.startswith("c"):
            pattern = pattern[1:]
        if pattern.endswith("v"):
            pattern = pattern[:-1]
        return pattern.count("v")

    def _contains_vowel(self, stem: str) -> bool:
        return any(not self._is_consonant(stem, i) for i in range(len(stem)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        """*o condition: stem ends cvc where the final c is not w, x or y."""
        if len(word) < 3:
            return False
        return (
            self._is_consonant(word, len(word) - 3)
            and not self._is_consonant(word, len(word) - 2)
            and self._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # -- steps ---------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            if self._measure(word[:-3]) > 0:
                return word[:-1]
            return word
        flagged = False
        if word.endswith("ed") and self._contains_vowel(word[:-2]):
            word = word[:-2]
            flagged = True
        elif word.endswith("ing") and self._contains_vowel(word[:-3]):
            word = word[:-3]
            flagged = True
        if flagged:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self._measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_SUFFIXES = (
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
        ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
        ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
        ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
        ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_SUFFIXES = (
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    )

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive",
        "ize",
    )

    def _replace_by_measure(self, word, suffixes, min_measure=0):
        for suffix, replacement in suffixes:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if self._measure(stem) > min_measure:
                    return stem + replacement
                return word
        return word

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if suffix == "ion" and (not stem or stem[-1] not in "st"):
                    return word
                if self._measure(stem) > 1:
                    return stem
                return word
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            measure = self._measure(stem)
            if measure > 1:
                return stem
            if measure == 1 and not self._ends_cvc(stem):
                return stem
        return word

    def _step5b(self, word: str) -> str:
        if (
            self._measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word

    # -- public API ------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of *word* (expects lower-case input)."""
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._replace_by_measure(word, self._STEP2_SUFFIXES)
        word = self._replace_by_measure(word, self._STEP3_SUFFIXES)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


_DEFAULT_STEMMER = PorterStemmer()


from functools import lru_cache


@lru_cache(maxsize=65536)
def stem(word: str) -> str:
    """Memoized module-level stemmer.

    The runtime framework stems every document term on the hot path
    (Section VI); natural-language term distributions are Zipfian, so a
    bounded cache removes nearly all repeated work.  With a compiled
    detection kernel attached this is the OOV fallback only — known
    vocabulary words come from the kernel's precomputed stem table.

    ``lru_cache`` is thread-safe (its bookkeeping runs under an
    internal lock), so concurrent ``process_batch`` workers share it
    without corruption; use :func:`stem_cache_info` /
    :func:`clear_stem_cache` to observe or reset it.
    """
    return _DEFAULT_STEMMER.stem(word.lower())


def stem_cache_info():
    """hits/misses/maxsize/currsize of the bounded stem memo."""
    return stem.cache_info()


def clear_stem_cache() -> None:
    """Drop the stem memo (test isolation; never required at runtime)."""
    stem.cache_clear()
