"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — build a small world, annotate a story, print the baseline
  ranking (the paper's Section II-B example flow);
* ``experiment <name>`` — run one of the paper's experiments
  (table2/table3/table4/table5/editorial/production/temporal) at a
  configurable scale and print the measured rows;
* ``rank <file>`` — train the combined ranker in a small world and rank
  the detectable concepts of an arbitrary text file;
* ``build-pack <out>`` — run the parallel vectorized offline builder
  (corpus -> index -> units -> interestingness -> relevance -> quantize
  -> pack) and write the v2 serving datapacks with per-stage timings;
* ``stats`` — run a sample serving workload and print the observability
  registry (Prometheus text or JSON snapshot); ``--snapshot FILE`` /
  ``--url URL`` render metrics captured by another process instead;
* ``serve`` — start the telemetry HTTP server (``/metrics``,
  ``/healthz``, ``/readyz``, ``POST /explain``, ``/traces/recent``,
  ``/debug/profile``, ``/debug/heap``, ``/debug/gc``) over a live
  ranking service, with CTR/churn quality monitoring and
  feature-drift detection attached;
* ``profile <command ...>`` — run any other repro command under the
  sampling stack profiler and print/write its collapsed stacks
  (``flamegraph.pl`` format).

``rank``, ``build-pack``, ``stats``, and ``serve`` accept
``--trace-out PATH`` to write sampled request/build traces as JSON
lines (``serve --trace-max-bytes`` adds size-based rotation).
``rank``, ``build-pack``, and ``serve`` accept ``--profile-out PATH``
(with ``--profile-hz``) to run under the stack profiler and write the
collapsed stacks on exit.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import List, Optional

from repro.corpus import WorldConfig
from repro.obs import (
    JsonLinesTraceSink,
    configure,
    get_registry,
    get_tracer,
    render_snapshot,
)
from repro.eval import (
    Environment,
    EnvironmentConfig,
    RankingExperiment,
    collect_dataset,
    production_ctr_experiment,
    table2_summations,
    table3_interestingness,
    table4_relevance,
    table5_combined,
    table6_editorial,
    temporal_feature_experiment,
    train_combined_ranker,
)

_DEMO_WORLD = WorldConfig(
    seed=7,
    vocabulary_size=1500,
    topic_count=16,
    words_per_topic=50,
    concept_count=180,
    topic_page_count=120,
)

_EXPERIMENT_WORLD = WorldConfig(
    seed=42,
    vocabulary_size=2500,
    topic_count=30,
    words_per_topic=60,
    concept_count=400,
    topic_page_count=300,
)

# --quick: a much smaller world for smoke runs and tests
_QUICK_WORLD = WorldConfig(
    seed=42,
    vocabulary_size=1200,
    topic_count=12,
    words_per_topic=40,
    concept_count=120,
    topic_page_count=80,
)


def _configure_observability(args: argparse.Namespace):
    """Install a fresh registry/tracer per the command's flags.

    Must run before any instrumented object is constructed — stores and
    services bind their metric handles at construction time.
    """
    trace_out = getattr(args, "trace_out", None)
    sample_every = getattr(args, "sample_every", None)
    if sample_every is None:
        sample_every = 1 if trace_out else 0
    sink = (
        JsonLinesTraceSink(
            trace_out, max_bytes=getattr(args, "trace_max_bytes", None)
        )
        if trace_out
        else None
    )
    return configure(enabled=True, sample_every=sample_every, sink=sink)


@contextmanager
def _maybe_profiler(args: argparse.Namespace):
    """Run the command body under a StackSampler when --profile-out asks.

    On exit the collapsed stacks (flamegraph.pl format) land at the
    given path and a one-line summary goes to stderr — stdout stays
    reserved for the command's own output.
    """
    out = getattr(args, "profile_out", None)
    if not out:
        yield None
        return
    from repro.obs.profile import StackSampler

    sampler = StackSampler(hz=getattr(args, "profile_hz", None) or 97)
    sampler.start()
    try:
        yield sampler
    finally:
        sampler.stop()
        sampler.write_collapsed(out)
        print(
            f"profile: {sampler.sample_count} samples at {sampler.hz:g} hz "
            f"over {sampler.duration_seconds:.2f}s -> {out}",
            file=sys.stderr,
        )


def _add_profile_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="run under the sampling profiler and write collapsed "
             "stacks (flamegraph.pl format) to PATH on exit",
    )
    parser.add_argument(
        "--profile-hz", type=float, default=97, metavar="HZ",
        help="stack-sampler frequency for --profile-out (default 97)",
    )


def _build_env(world: WorldConfig, quiet: bool = False) -> Environment:
    if not quiet:
        print("building synthetic environment ...", flush=True)
    return Environment.build(EnvironmentConfig(world=world))


def _cmd_demo(args: argparse.Namespace) -> int:
    env = _build_env(_DEMO_WORLD)
    story = env.stories(1, seed=args.seed)[0]
    annotated = env.pipeline.process(story.text)
    print(f"\nstory ({len(story.text)} chars), "
          f"{len(annotated.detections)} detections\n")
    print("top concepts by concept-vector score:")
    for detection in annotated.by_concept_vector_score()[: args.top]:
        print(f"  {detection.phrase:<36s} {detection.score:7.3f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    env = _build_env(_QUICK_WORLD if args.quick else _EXPERIMENT_WORLD)
    if args.name == "table2":
        for row in table2_summations(env):
            print(f"{row.phrase:<44s} {row.summation:10.1f}  ({row.kind})")
        return 0

    print(f"collecting click data over {args.stories} stories ...", flush=True)
    dataset = collect_dataset(env, args.stories)
    print(
        f"dataset: {dataset.story_count} stories, {dataset.window_count} "
        f"windows, {dataset.entity_count} entities"
    )
    experiment = RankingExperiment(env, dataset)

    if args.name == "table3":
        for result in table3_interestingness(experiment):
            print(result.row())
    elif args.name == "table4":
        for result in table4_relevance(experiment):
            print(result.row())
    elif args.name == "table5":
        for result in table5_combined(experiment):
            print(result.row())
    elif args.name == "editorial":
        ranker = train_combined_ranker(env, experiment)
        results = table6_editorial(env, ranker, news_count=60, answers_count=120)
        for ranker_name, per_content in results.items():
            for content, table in per_content.items():
                print(
                    f"{ranker_name:<22s} {content:<8s} "
                    f"not-interesting={table.interestingness['not'] * 100:5.1f}% "
                    f"not-relevant={table.relevance['not'] * 100:5.1f}%"
                )
    elif args.name == "production":
        ranker = train_combined_ranker(env, experiment)
        cmp = production_ctr_experiment(
            env, ranker, annotate_top=5, stories_per_week=15,
            before_weeks=8, after_weeks=6,
        )
        print(f"views  change: {cmp.views_change_percent:+6.1f}%")
        print(f"clicks change: {cmp.clicks_change_percent:+6.1f}%")
        print(f"CTR    change: {cmp.ctr_change_percent:+6.1f}%")
    elif args.name == "temporal":
        result = temporal_feature_experiment(env)
        print(
            f"static WER={result.static_wer * 100:.2f}%  "
            f"+temporal WER={result.temporal_wer * 100:.2f}%  "
            f"event windows: {result.event_static_wer * 100:.2f}% -> "
            f"{result.event_temporal_wer * 100:.2f}%"
        )
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.name)
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    """Print the statistics of a synthetic world build."""
    env = _build_env(_QUICK_WORLD if args.quick else _EXPERIMENT_WORLD)
    world = env.world
    named = world.named_entities()
    junk = world.junk_concepts()
    multi = [c for c in world.concepts if len(c.terms) > 1]
    print(f"seed               : {world.config.seed}")
    print(f"vocabulary         : {len(world.vocabulary)} words "
          f"(zipf {world.vocabulary.zipf_exponent})")
    print(f"topics             : {len(world.topics)}")
    print(f"concepts           : {len(world.concepts)} "
          f"({len(named)} named, {len(junk)} junk, {len(multi)} multi-term)")
    print(f"web corpus         : {len(world.web_corpus)} pages, "
          f"{world.doc_frequency.total_documents} indexed")
    print(f"query log          : {len(env.query_log)} distinct queries, "
          f"{env.query_log.total_submissions} submissions")
    print(f"unit lexicon       : {len(env.lexicon)} units "
          f"({len(env.lexicon.multi_term_units())} multi-term)")
    print(f"detectable phrases : {env.concept_detector.inventory_size}")
    print(f"dictionary entries : {len(world.dictionary)}")
    print(f"wikipedia articles : {len(world.wikipedia)}")
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    try:
        with open(args.file) as handle:
            text = handle.read()
    except OSError as error:
        print(f"cannot read {args.file}: {error}", file=sys.stderr)
        return 1
    __, tracer = _configure_observability(args)
    with _maybe_profiler(args):
        env = _build_env(_DEMO_WORLD)
        dataset = collect_dataset(env, args.stories)
        experiment = RankingExperiment(env, dataset)
        ranker = train_combined_ranker(env, experiment)
        with tracer.trace("rank") as trace:
            with tracer.span("detect"):
                annotated = env.pipeline.process(text, is_html=args.html)
            with tracer.span("rank"):
                ranked = ranker.rank_document(annotated)
            if trace.sampled:
                trace.meta.update(
                    {"bytes": len(text), "detections": len(ranked)}
                )
    if not ranked:
        print("no detectable concepts in the input "
              "(the demo world only knows its own synthetic inventory)")
        return 0
    for detection in ranked[: args.top]:
        print(f"  {detection.phrase:<36s} {detection.score:7.3f}")
    return 0


def _cmd_build_pack(args: argparse.Namespace) -> int:
    """One-command offline build over a synthetic world."""
    from repro.corpus.world import SyntheticWorld
    from repro.offline.builder import BuildConfig, OfflineBuilder
    from repro.querylog.generator import query_log_for_world

    _configure_observability(args)
    world_config = _QUICK_WORLD if args.quick else _EXPERIMENT_WORLD
    print("building synthetic world ...", flush=True)
    world = SyntheticWorld.build(world_config)
    query_log = query_log_for_world(world, seed=101)
    phrases = [" ".join(concept.terms) for concept in world.concepts]
    config = BuildConfig(
        fast=not args.seed_path,
        workers=args.workers,
        resource=args.resource,
    )
    print(
        f"building packs ({config.resolved_workers()} worker(s), "
        f"{'seed' if args.seed_path else 'fast'} pipeline) ...",
        flush=True,
    )
    with _maybe_profiler(args):
        report = OfflineBuilder(config).build(
            world.web_corpus,
            query_log,
            phrases,
            args.out,
            dictionary=world.dictionary,
            wikipedia=world.wikipedia,
        )
    for stage in report.stages:
        print(
            f"  {stage.name:<16s} {stage.seconds:8.3f}s  "
            f"{stage.items_per_second:10.1f} {stage.unit}/s"
        )
    print(
        f"total {report.total_seconds:.3f}s — "
        f"{report.docs_per_second:.1f} docs/s, "
        f"{report.concepts_per_second:.1f} concepts/s"
    )
    for name, path in report.pack_paths.items():
        print(f"  {name}: {path} (sha256 {report.pack_sha256[name][:12]}...)")
    return 0


def _build_quick_service(
    args: argparse.Namespace,
    quiet: bool,
    pack_dir: Optional[str] = None,
    with_quality: bool = False,
):
    """Quick world + stores + demo model -> a ready RankerService.

    Stores either come from a built datapack directory (*pack_dir*,
    with the drift baseline read from its manifest) or are built
    in-process (baseline taken straight from the fresh store).  With
    *with_quality* the service carries a
    :class:`~repro.obs.quality.QualityMonitor` and — when a baseline is
    available — a :class:`~repro.obs.quality.DriftDetector`.

    Returns ``(service, quality, drift, env)``.
    """
    import numpy as np

    from repro.ranking import RankSVM
    from repro.runtime import (
        PackedRelevanceStore,
        QuantizedInterestingnessStore,
        RankerService,
    )

    env = _build_env(_QUICK_WORLD, quiet=quiet)
    if getattr(args, "pure_python", False):
        # the selectable reference path: trie matching + Porter stemming
        env.pipeline.attach_kernel(None)
    baseline = None
    if pack_dir is not None:
        from repro.obs.quality import load_baseline
        from repro.runtime.datapack import (
            load_detection_kernel,
            load_interestingness_store,
            load_relevance_store,
        )

        if not quiet:
            print(f"loading datapacks from {pack_dir} ...", flush=True)
        pack = Path(pack_dir)
        interestingness = load_interestingness_store(
            str(pack / "interestingness.rpak")
        )
        relevance = load_relevance_store(str(pack / "relevance.rpak"))
        detection_pack = pack / "detection.rpak"
        if detection_pack.exists() and not getattr(args, "pure_python", False):
            try:
                env.pipeline.attach_kernel(
                    load_detection_kernel(str(detection_pack))
                )
                if not quiet:
                    print("  detection kernel: loaded from pack", flush=True)
            except ValueError as error:
                # pack built against a different inventory: keep the
                # lazily-compiled kernel instead of a mismatched one
                if not quiet:
                    print(
                        f"  detection kernel: not attached ({error})",
                        flush=True,
                    )
        baseline = load_baseline(pack_dir)
        if baseline is None and not quiet:
            print(
                "  (manifest has no feature_baselines section — "
                "drift detection disabled)",
                flush=True,
            )
    else:
        phrases = [concept.phrase for concept in env.world.concepts]
        if not quiet:
            print("building quantized stores + service ...", flush=True)
        interestingness = QuantizedInterestingnessStore.build(
            env.extractor, phrases
        )
        relevance = PackedRelevanceStore.build(
            env.relevance_model(phrases[: args.relevance_phrases])
        )
        if with_quality:
            from repro.obs.quality import DriftBaseline

            baseline = DriftBaseline.from_store(interestingness)

    sample_phrase = interestingness.phrases()[0]
    feature_dim = interestingness.extract(sample_phrase).numeric(()).size + 1
    svm = RankSVM(epochs=30)
    rng = np.random.default_rng(0)
    sample = rng.normal(size=(40, feature_dim))
    svm.fit(sample, sample[:, 0], np.repeat(np.arange(8), 5))

    quality = drift = None
    if with_quality:
        from repro.clicks.online import OnlineCtrTracker
        from repro.obs.quality import DriftDetector, QualityMonitor

        quality = QualityMonitor(tracker=OnlineCtrTracker())
        if baseline is not None:
            drift = DriftDetector(baseline)
    service = RankerService(
        env.pipeline, interestingness, relevance, svm,
        quality=quality, drift=drift,
    )
    return service, quality, drift, env


def _cmd_stats(args: argparse.Namespace) -> int:
    """Print a metrics registry: this process's, a snapshot's, or a URL's."""
    if args.snapshot and args.url:
        print("--snapshot and --url are mutually exclusive", file=sys.stderr)
        return 2
    if args.snapshot:
        payload = json.loads(Path(args.snapshot).read_text())
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            sys.stdout.write(render_snapshot(payload))
        return 0
    if args.url:
        from urllib.request import urlopen

        with urlopen(args.url, timeout=10) as response:
            sys.stdout.write(response.read().decode("utf-8"))
        return 0

    quiet = args.format == "json"
    __, tracer = _configure_observability(args)
    service, __q, __d, env = _build_quick_service(args, quiet)
    documents = [story.text for story in env.stories(args.docs, seed=args.seed)]
    if not quiet:
        print(f"ranking {len(documents)} documents ...", flush=True)
    service.process_batch(documents, top=5, workers=args.workers)

    if args.format == "json":
        print(json.dumps(get_registry().snapshot(), indent=2, sort_keys=True))
    else:
        print()
        sys.stdout.write(get_registry().render_prometheus())
    recent = get_tracer().recent
    if recent and not quiet:
        last = recent[-1]
        print(
            f"\nlast sampled trace ({last['kind']}, "
            f"{last['duration'] * 1e3:.2f} ms):"
        )
        for span in last.get("spans", []):
            print(f"  {span['name']:<12s} {span['duration'] * 1e3:8.3f} ms")
            for child in span.get("children", []):
                print(
                    f"    {child['name']:<10s} {child['duration'] * 1e3:8.3f} ms"
                )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the telemetry HTTP server over a live ranking service."""
    from repro.obs.server import TelemetryServer

    registry, tracer = _configure_observability(args)
    service, quality, drift, __ = _build_quick_service(
        args, quiet=False, pack_dir=args.pack, with_quality=True
    )
    server = TelemetryServer(
        service=service,
        registry=registry,
        tracer=tracer,
        drift=drift,
        quality=quality,
        host=args.host,
        port=args.port,
        default_top=args.top,
    )
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n")
    print(f"serving telemetry on {server.url}", flush=True)
    print(
        "endpoints: GET /metrics /healthz /readyz /traces/recent "
        "/debug/profile /debug/heap /debug/gc, POST /explain",
        flush=True,
    )
    with _maybe_profiler(args):
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down", flush=True)
        finally:
            server.stop()
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile [--hz N] [--out PATH] -- <command ...>``.

    Re-enters :func:`main` with the wrapped command under a running
    :class:`StackSampler`, then prints the hottest collapsed stacks to
    stderr so the profiled command's stdout stays clean.
    """
    command = list(args.command)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        print("profile: no command given (try: repro profile -- "
              "rank FILE)", file=sys.stderr)
        return 2
    if command[0] == "profile":
        print("profile: refusing to profile itself", file=sys.stderr)
        return 2
    from repro.obs.profile import StackSampler

    sampler = StackSampler(hz=args.hz)
    sampler.start()
    try:
        try:
            status = main(command)
        except SystemExit as exc:  # argparse errors inside the command
            code = exc.code
            status = code if isinstance(code, int) else (0 if code is None
                                                         else 1)
    finally:
        sampler.stop()
    if args.out:
        sampler.write_collapsed(args.out)
    print(
        f"profile: {sampler.sample_count} samples at {sampler.hz:g} hz "
        f"over {sampler.duration_seconds:.2f}s",
        file=sys.stderr,
    )
    for row in sampler.top_stacks(limit=args.top):
        print(f"  {row['samples']:6d}  {row['stack']}", file=sys.stderr)
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Contextual Ranking of Keywords Using Click Data (ICDE"
        " 2009) — reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="annotate one synthetic story")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--top", type=int, default=5)
    demo.set_defaults(handler=_cmd_demo)

    experiment = commands.add_parser(
        "experiment", help="run one of the paper's experiments"
    )
    experiment.add_argument(
        "name",
        choices=[
            "table2", "table3", "table4", "table5",
            "editorial", "production", "temporal",
        ],
    )
    experiment.add_argument("--stories", type=int, default=300)
    experiment.add_argument(
        "--quick",
        action="store_true",
        help="use a small world for a fast smoke run",
    )
    experiment.set_defaults(handler=_cmd_experiment)

    describe = commands.add_parser(
        "describe", help="print the synthetic world's statistics"
    )
    describe.add_argument("--quick", action="store_true")
    describe.set_defaults(handler=_cmd_describe)

    rank = commands.add_parser("rank", help="rank concepts in a text file")
    rank.add_argument("file")
    rank.add_argument("--html", action="store_true")
    rank.add_argument("--top", type=int, default=10)
    rank.add_argument("--stories", type=int, default=150)
    rank.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write sampled traces as JSON lines to PATH",
    )
    _add_profile_flags(rank)
    rank.set_defaults(handler=_cmd_rank)

    build_pack = commands.add_parser(
        "build-pack", help="offline build: corpus + query log -> v2 datapacks"
    )
    build_pack.add_argument("out", help="output directory for the packs")
    build_pack.add_argument("--quick", action="store_true")
    build_pack.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for relevance mining (default: cpu count)",
    )
    build_pack.add_argument(
        "--resource",
        choices=["snippets", "prisma", "suggestions"],
        default="snippets",
        help="relevance-mining resource to pack",
    )
    build_pack.add_argument(
        "--seed-path", action="store_true",
        help="run the seed-style serial dict pipeline (equivalence baseline)",
    )
    build_pack.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the sampled build trace as JSON lines to PATH",
    )
    _add_profile_flags(build_pack)
    build_pack.set_defaults(handler=_cmd_build_pack)

    stats = commands.add_parser(
        "stats",
        help="run a sample serving workload and print the metrics registry",
        description=(
            "By default this runs a sample workload in THIS process and "
            "prints this process's own registry — it cannot see another "
            "process's metrics.  To inspect a running server, pass "
            "--url http://HOST:PORT/metrics; to render a snapshot file "
            "written elsewhere (registry.snapshot() as JSON), pass "
            "--snapshot FILE."
        ),
    )
    stats.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help="render a JSON registry snapshot file instead of running "
             "a workload",
    )
    stats.add_argument(
        "--url", default=None, metavar="URL",
        help="fetch and print a live /metrics endpoint instead of "
             "running a workload",
    )
    stats.add_argument("--docs", type=int, default=25,
                       help="documents to rank in the sample workload")
    stats.add_argument("--seed", type=int, default=777)
    stats.add_argument("--workers", type=int, default=2,
                       help="batch workers (exercises the chunk metrics)")
    stats.add_argument("--relevance-phrases", type=int, default=40,
                       help="concepts to mine relevant keywords for")
    stats.add_argument(
        "--sample-every", type=int, default=1, metavar="N",
        help="keep every N-th request's full trace (0 disables)",
    )
    stats.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="Prometheus text (default) or the JSON snapshot",
    )
    stats.add_argument(
        "--pure-python", action="store_true",
        help="run the pure-Python detection path (no compiled kernel)",
    )
    stats.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write sampled traces as JSON lines to PATH",
    )
    stats.set_defaults(handler=_cmd_stats)

    serve = commands.add_parser(
        "serve",
        help="serve /metrics, /healthz, /readyz, /explain, /traces/recent",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8080,
        help="listen port (0 binds an ephemeral port; see --port-file)",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port to PATH (for --port 0 callers)",
    )
    serve.add_argument(
        "--pack", default=None, metavar="DIR",
        help="serve stores from a build-pack output directory (its "
             "manifest's feature_baselines arm the drift detector); "
             "default builds stores in-process",
    )
    serve.add_argument("--relevance-phrases", type=int, default=40,
                       help="concepts to mine when building in-process")
    serve.add_argument(
        "--pure-python", action="store_true",
        help="run the pure-Python detection path (no compiled kernel)",
    )
    serve.add_argument("--top", type=int, default=10,
                       help="default result count for /explain")
    serve.add_argument(
        "--sample-every", type=int, default=1, metavar="N",
        help="keep every N-th request's full trace (0 disables)",
    )
    serve.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write sampled traces as JSON lines to PATH",
    )
    serve.add_argument(
        "--trace-max-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the --trace-out file before it exceeds BYTES "
             "(keeps 3 rotated generations)",
    )
    _add_profile_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    profile = commands.add_parser(
        "profile",
        help="run another repro command under the sampling profiler",
        description=(
            "Runs `repro <command ...>` in this process under a "
            "StackSampler and prints the hottest collapsed stacks when "
            "it finishes.  Example: repro profile -- rank story.txt"
        ),
    )
    profile.add_argument(
        "--hz", type=float, default=97,
        help="stack-sampler frequency (default 97)",
    )
    profile.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write collapsed stacks (flamegraph.pl format) to PATH",
    )
    profile.add_argument(
        "--top", type=int, default=10,
        help="collapsed stacks to print (default 10)",
    )
    profile.add_argument(
        "command", nargs=argparse.REMAINDER,
        help="the repro command to profile (prefix with -- to "
             "separate its flags from profile's own)",
    )
    profile.set_defaults(handler=_cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
